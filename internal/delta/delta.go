// Package delta models batched mutations of an undirected graph — the
// streaming-update substrate of ROADMAP item 4. A Batch is one atomic set of
// undirected edge inserts and deletes; Apply produces the next epoch's edge
// list by stable compaction (surviving directed edges keep their relative
// order, so per-GPU CSRs of untouched partitions rebuild byte-identically —
// see partition.DistributeIncremental); Affected derives, from a prior
// canonical BFS result, exactly which vertices a delta can move — the inputs
// of core.Plan.RunRepair's corrective traversal.
//
// The package sits below core: it knows edge lists and BFS trees, nothing
// about partitions, sessions or epochs.
package delta

import (
	"fmt"
	"sort"

	"gcbfs/internal/graph"
)

// Batch is one atomic set of undirected edge mutations. Each entry names an
// undirected pair {U, V}; Apply materializes both directed orientations, the
// same convention gcbfs.Graph.AddUndirectedEdge uses. A pair may appear at
// most once across the whole batch (inserting and deleting the same edge in
// one batch is rejected as ambiguous).
type Batch struct {
	Inserts []graph.Edge
	Deletes []graph.Edge
}

// Empty reports whether the batch mutates nothing.
func (b *Batch) Empty() bool {
	return b == nil || (len(b.Inserts) == 0 && len(b.Deletes) == 0)
}

// Size returns the number of undirected mutations in the batch.
func (b *Batch) Size() int {
	if b == nil {
		return 0
	}
	return len(b.Inserts) + len(b.Deletes)
}

// canon returns the canonical (min, max) orientation of an undirected pair.
func canon(e graph.Edge) graph.Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Validate checks the batch against a graph of n vertices: endpoints in
// range, no self loops, and no undirected pair repeated anywhere in the
// batch.
func (b *Batch) Validate(n int64) error {
	if b == nil {
		return nil
	}
	seen := make(map[graph.Edge]struct{}, len(b.Inserts)+len(b.Deletes))
	check := func(kind string, edges []graph.Edge) error {
		for _, e := range edges {
			if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
				return fmt.Errorf("delta: %s {%d,%d} out of range [0,%d)", kind, e.U, e.V, n)
			}
			if e.U == e.V {
				return fmt.Errorf("delta: %s {%d,%d} is a self loop", kind, e.U, e.V)
			}
			c := canon(e)
			if _, dup := seen[c]; dup {
				return fmt.Errorf("delta: pair {%d,%d} appears twice in the batch", c.U, c.V)
			}
			seen[c] = struct{}{}
		}
		return nil
	}
	if err := check("insert", b.Inserts); err != nil {
		return err
	}
	return check("delete", b.Deletes)
}

// Apply returns the next epoch's edge list: every directed copy of each
// deleted undirected pair is removed (parallel copies included), then both
// orientations of each insert are appended. The compaction is stable —
// surviving directed edges keep their relative order — which is what lets
// the incremental distributor rebuild only the GPUs whose routed edge
// sequence actually changed. The input edge list is never modified. Deleting
// a pair the graph does not contain is an error.
func Apply(el *graph.EdgeList, b *Batch) (*graph.EdgeList, error) {
	if err := b.Validate(el.N); err != nil {
		return nil, err
	}
	if b.Empty() {
		return &graph.EdgeList{N: el.N, Edges: append([]graph.Edge(nil), el.Edges...)}, nil
	}
	del := make(map[graph.Edge]bool, 2*len(b.Deletes))
	for _, e := range b.Deletes {
		del[graph.Edge{U: e.U, V: e.V}] = false
		del[graph.Edge{U: e.V, V: e.U}] = false
	}
	out := &graph.EdgeList{
		N:     el.N,
		Edges: make([]graph.Edge, 0, len(el.Edges)+2*len(b.Inserts)),
	}
	for _, e := range el.Edges {
		if _, drop := del[e]; drop {
			del[e] = true
			continue
		}
		out.Edges = append(out.Edges, e)
	}
	for _, e := range b.Deletes {
		if !del[graph.Edge{U: e.U, V: e.V}] && !del[graph.Edge{U: e.V, V: e.U}] {
			return nil, fmt.Errorf("delta: delete {%d,%d} not present in graph", e.U, e.V)
		}
	}
	for _, e := range b.Inserts {
		out.Edges = append(out.Edges, graph.Edge{U: e.U, V: e.V}, graph.Edge{U: e.V, V: e.U})
	}
	return out, nil
}

// Affected derives the repair inputs from a prior canonical BFS outcome
// (levels and the canonical min-parent tree, both over the OLD epoch) and
// the batch that advances it:
//
//   - invalid marks every vertex whose prior level can no longer be trusted.
//     A deleted edge {u,v} orphans v exactly when u is v's canonical tree
//     parent (and vice versa); the orphan's entire tree subtree is
//     invalidated. Every valid vertex keeps its whole parent chain — each
//     chain edge survived and every ancestor is valid — so a path of its old
//     length still exists and deletions cannot increase its distance.
//     Invalidation may overshoot (a subtree vertex can have a surviving
//     shortest path through a non-tree neighbor); the corrective traversal
//     re-derives those at their unchanged level.
//
//   - insertSeeds are the still-valid endpooints of inserted edges: the only
//     valid vertices whose adjacency gained an edge, hence the only places a
//     level decrease can originate. Invalid endpoints need no seed — the
//     corrective wave re-reaches them through the seeded valid boundary.
//
// The valid in-neighbors of invalidated vertices — the rest of the repair
// seed set — depend on the NEW epoch's adjacency and are discovered by the
// distributed probe inside core.Plan.RunRepair.
func Affected(levels []int32, parents []int64, b *Batch) (invalid []bool, insertSeeds []int64) {
	n := len(levels)
	invalid = make([]bool, n)

	// Orphan roots: deleted tree edges.
	var roots []int64
	orphan := func(child, lost int64) {
		if child < int64(n) && levels[child] >= 1 && parents[child] == lost && !invalid[child] {
			invalid[child] = true
			roots = append(roots, child)
		}
	}
	for _, e := range b.Deletes {
		orphan(e.V, e.U)
		orphan(e.U, e.V)
	}

	if len(roots) > 0 {
		// Child index over the canonical tree: two-pass counting sort keyed
		// by parent, covering reachable non-root vertices only.
		count := make([]int32, n+1)
		for v := 0; v < n; v++ {
			if p := parents[v]; p >= 0 && p != int64(v) {
				count[p+1]++
			}
		}
		for i := 1; i <= n; i++ {
			count[i] += count[i-1]
		}
		children := make([]int64, count[n])
		cursor := make([]int32, n)
		copy(cursor, count[:n])
		for v := 0; v < n; v++ {
			if p := parents[v]; p >= 0 && p != int64(v) {
				children[cursor[p]] = int64(v)
				cursor[p]++
			}
		}
		// Subtree propagation.
		for len(roots) > 0 {
			v := roots[len(roots)-1]
			roots = roots[:len(roots)-1]
			for _, w := range children[count[v]:count[v+1]] {
				if !invalid[w] {
					invalid[w] = true
					roots = append(roots, w)
				}
			}
		}
	}

	seedSet := make(map[int64]struct{}, 2*len(b.Inserts))
	for _, e := range b.Inserts {
		for _, v := range [2]int64{e.U, e.V} {
			if levels[v] >= 0 && !invalid[v] {
				seedSet[v] = struct{}{}
			}
		}
	}
	insertSeeds = make([]int64, 0, len(seedSet))
	for v := range seedSet {
		insertSeeds = append(insertSeeds, v)
	}
	sort.Slice(insertSeeds, func(i, j int) bool { return insertSeeds[i] < insertSeeds[j] })
	return invalid, insertSeeds
}
