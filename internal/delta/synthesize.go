package delta

import (
	"fmt"
	"math/rand"

	"gcbfs/internal/graph"
)

// Kind selects the mutation mix a synthesized batch carries.
type Kind int

const (
	KindInsert Kind = iota // inserts only
	KindDelete             // deletes only
	KindMixed              // half deletes, half inserts
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindMixed:
		return "mixed"
	}
	return "??"
}

// ParseKind parses the -updatekind spellings.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "insert":
		return KindInsert, nil
	case "delete":
		return KindDelete, nil
	case "mixed":
		return KindMixed, nil
	}
	return 0, fmt.Errorf("delta: unknown kind %q (want insert, delete or mixed)", s)
}

// Synthesize builds a deterministic batch mutating ~frac of the graph's
// undirected edges: deletes sample existing undirected pairs without
// replacement; inserts draw fresh non-self pairs absent from both the graph
// and the batch. The same (graph, frac, kind, seed) always yields the same
// batch — ablations and CI replay steps depend on that.
func Synthesize(el *graph.EdgeList, frac float64, kind Kind, seed uint64) *Batch {
	exists := make(map[graph.Edge]struct{}, len(el.Edges))
	pairs := make([]graph.Edge, 0, len(el.Edges)/2)
	for _, e := range el.Edges {
		if e.U == e.V {
			continue
		}
		c := canon(e)
		if _, ok := exists[c]; !ok {
			exists[c] = struct{}{}
			pairs = append(pairs, c)
		}
	}
	total := int(frac * float64(len(pairs)))
	if total < 1 {
		total = 1
	}
	deletes, inserts := 0, 0
	switch kind {
	case KindInsert:
		inserts = total
	case KindDelete:
		deletes = total
	case KindMixed:
		deletes = total / 2
		inserts = total - deletes
	}
	if deletes > len(pairs) {
		deletes = len(pairs)
	}

	rng := rand.New(rand.NewSource(int64(seed)))
	b := &Batch{}

	// Partial Fisher–Yates over the canonical pair list: the first `deletes`
	// entries after shuffling are the sampled deletions.
	for i := 0; i < deletes; i++ {
		j := i + rng.Intn(len(pairs)-i)
		pairs[i], pairs[j] = pairs[j], pairs[i]
		b.Deletes = append(b.Deletes, pairs[i])
	}

	for attempts := 0; len(b.Inserts) < inserts && attempts < 100*inserts+1000; attempts++ {
		u := rng.Int63n(el.N)
		v := rng.Int63n(el.N)
		if u == v {
			continue
		}
		c := canon(graph.Edge{U: u, V: v})
		if _, ok := exists[c]; ok {
			continue
		}
		exists[c] = struct{}{} // also excludes duplicate picks within the batch
		b.Inserts = append(b.Inserts, c)
	}
	return b
}
