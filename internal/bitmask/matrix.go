package bitmask

import (
	"fmt"
	"math/bits"
)

// Matrix is a dense rows×k bit matrix stored row-major in 64-bit words: one
// row per vertex, one bit per query. It is the visited/frontier state of the
// multi-source shared sweep (MS-BFS): row r's bit q says "vertex r has been
// reached by query q". Rows are exposed as raw word slices so the sweep's
// hot loops run word-wise OR/ANDNOT folds, and the flat word storage is
// exposed through Words so delegate matrices ship through the same OR
// allreduce as single-query delegate masks.
type Matrix struct {
	rows  int64
	k     int
	w     int // words per row = ceil(k/64)
	words []uint64
}

// NewMatrix returns a rows×k matrix, all bits clear.
func NewMatrix(rows int64, k int) *Matrix {
	if rows < 0 || k <= 0 {
		panic(fmt.Sprintf("bitmask: invalid matrix %d×%d", rows, k))
	}
	w := (k + wordBits - 1) / wordBits
	return &Matrix{rows: rows, k: k, w: w, words: make([]uint64, rows*int64(w))}
}

// Rows returns the row count.
func (m *Matrix) Rows() int64 { return m.rows }

// K returns the query-set width in bits.
func (m *Matrix) K() int { return m.k }

// W returns the number of words per row.
func (m *Matrix) W() int { return m.w }

// Row returns row r's word slice. Mutating it mutates the matrix.
func (m *Matrix) Row(r int64) []uint64 {
	off := r * int64(m.w)
	return m.words[off : off+int64(m.w) : off+int64(m.w)]
}

// Words returns the flat row-major backing storage.
func (m *Matrix) Words() []uint64 { return m.words }

// Reset clears all bits.
func (m *Matrix) Reset() {
	clear(m.words)
}

// Set sets bit q of row r.
func (m *Matrix) Set(r int64, q int) {
	m.words[r*int64(m.w)+int64(q/wordBits)] |= 1 << uint(q%wordBits)
}

// Get reports bit q of row r.
func (m *Matrix) Get(r int64, q int) bool {
	return m.words[r*int64(m.w)+int64(q/wordBits)]&(1<<uint(q%wordBits)) != 0
}

// Any reports whether any bit of the whole matrix is set.
func (m *Matrix) Any() bool {
	for _, w := range m.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Row-level word folds. All operands must have equal length (the sweep's
// rows all share one width); length mismatches panic via the bounds check.

// RowOr sets dst |= src.
func RowOr(dst, src []uint64) {
	_ = dst[len(src)-1]
	for i, w := range src {
		dst[i] |= w
	}
}

// RowAndNot sets dst &^= src.
func RowAndNot(dst, src []uint64) {
	_ = dst[len(src)-1]
	for i, w := range src {
		dst[i] &^= w
	}
}

// RowAndNotInto writes a &^ b into dst and reports whether any bit survived.
func RowAndNotInto(dst, a, b []uint64) bool {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	var any uint64
	for i, w := range a {
		nw := w &^ b[i]
		dst[i] = nw
		any |= nw
	}
	return any != 0
}

// RowAny reports whether any bit of the row is set.
func RowAny(r []uint64) bool {
	for _, w := range r {
		if w != 0 {
			return true
		}
	}
	return false
}

// RowCount returns the row's popcount.
func RowCount(r []uint64) int64 {
	var c int64
	for _, w := range r {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// RowForEach calls fn for every set bit of the row in ascending order.
func RowForEach(r []uint64, fn func(q int)) {
	for wi, w := range r {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}
