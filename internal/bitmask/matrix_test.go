package bitmask

import "testing"

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(5, 130) // 3 words per row
	if m.W() != 3 || m.K() != 130 || m.Rows() != 5 {
		t.Fatalf("shape = %d×%d (w=%d)", m.Rows(), m.K(), m.W())
	}
	if m.Any() {
		t.Fatal("fresh matrix has set bits")
	}
	m.Set(0, 0)
	m.Set(4, 129)
	m.Set(2, 64)
	if !m.Get(0, 0) || !m.Get(4, 129) || !m.Get(2, 64) || m.Get(2, 63) {
		t.Fatal("Set/Get mismatch")
	}
	if !m.Any() {
		t.Fatal("Any false after Set")
	}
	if got := RowCount(m.Row(4)); got != 1 {
		t.Fatalf("RowCount(row 4) = %d", got)
	}
	if len(m.Words()) != 15 {
		t.Fatalf("Words len = %d", len(m.Words()))
	}
	m.Reset()
	if m.Any() {
		t.Fatal("Reset left bits")
	}
}

func TestMatrixRowIsolation(t *testing.T) {
	m := NewMatrix(3, 64)
	m.Set(1, 7)
	for r := int64(0); r < 3; r++ {
		want := int64(0)
		if r == 1 {
			want = 1
		}
		if got := RowCount(m.Row(r)); got != want {
			t.Fatalf("row %d count = %d, want %d", r, got, want)
		}
	}
	// Row views alias the matrix storage.
	m.Row(2)[0] = 1 << 3
	if !m.Get(2, 3) {
		t.Fatal("Row view does not alias storage")
	}
}

func TestRowFolds(t *testing.T) {
	a := []uint64{0b1010, 0b0001}
	b := []uint64{0b0110, 0b0001}
	dst := make([]uint64, 2)
	if !RowAndNotInto(dst, a, b) {
		t.Fatal("RowAndNotInto reported empty")
	}
	if dst[0] != 0b1000 || dst[1] != 0 {
		t.Fatalf("RowAndNotInto = %b,%b", dst[0], dst[1])
	}
	if RowAndNotInto(dst, b, []uint64{0b0110, 0b0001}) {
		t.Fatal("RowAndNotInto reported survivors for a ⊆ b")
	}
	RowOr(dst, a)
	if dst[0] != 0b1010 || dst[1] != 0b0001 {
		t.Fatalf("RowOr = %b,%b", dst[0], dst[1])
	}
	RowAndNot(dst, b)
	if dst[0] != 0b1000 || dst[1] != 0 {
		t.Fatalf("RowAndNot = %b,%b", dst[0], dst[1])
	}
	if RowAny(dst[1:]) {
		t.Fatal("RowAny on zero word")
	}
	var got []int
	RowForEach([]uint64{1 << 5, 1 << 1}, func(q int) { got = append(got, q) })
	if len(got) != 2 || got[0] != 5 || got[1] != 65 {
		t.Fatalf("RowForEach = %v", got)
	}
}
