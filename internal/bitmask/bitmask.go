// Package bitmask provides dense bit sets used to track the visited status
// of delegate vertices. A delegate occupies a single bit (paper §IV-A), and
// delegate masks are the unit of global reduction in the communication model
// (paper §V-A). Masks support both plain and atomic mutation: visit kernels
// running on concurrent simulated GPU lanes use the atomic forms, while the
// reduction paths use whole-word operations.
package bitmask

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Mask is a fixed-capacity dense bit set. The zero value is unusable; create
// masks with New. The underlying word slice is exported through Words so the
// communication layer can ship masks without copying bit by bit.
type Mask struct {
	n     int64 // number of addressable bits
	words []uint64
}

// New returns a mask able to hold n bits, all cleared.
func New(n int64) *Mask {
	if n < 0 {
		panic(fmt.Sprintf("bitmask: negative size %d", n))
	}
	return &Mask{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromWords wraps an existing word slice as a mask of n bits. The slice is
// used directly (not copied); it must contain at least ceil(n/64) words.
func FromWords(n int64, words []uint64) *Mask {
	need := int((n + wordBits - 1) / wordBits)
	if len(words) < need {
		panic(fmt.Sprintf("bitmask: FromWords needs %d words, got %d", need, len(words)))
	}
	return &Mask{n: n, words: words[:need]}
}

// Len returns the number of addressable bits.
func (m *Mask) Len() int64 { return m.n }

// Words returns the backing word slice. Mutating it mutates the mask.
func (m *Mask) Words() []uint64 { return m.words }

// ByteSize returns the wire size of the mask in bytes (8 per word). This is
// the quantity the paper's communication model charges (d/8 bytes per mask).
func (m *Mask) ByteSize() int64 { return int64(len(m.words)) * 8 }

// Set sets bit i.
func (m *Mask) Set(i int64) {
	m.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (m *Mask) Clear(i int64) {
	m.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (m *Mask) Get(i int64) bool {
	return m.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetAtomic sets bit i with a lock-free read-modify-write and reports whether
// this call changed the bit (i.e. it was previously clear). Visit kernels use
// the return value to enqueue each newly visited delegate exactly once.
func (m *Mask) SetAtomic(i int64) bool {
	addr := &m.words[i/wordBits]
	bit := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|bit) {
			return true
		}
	}
}

// GetAtomic reports bit i using an atomic load.
func (m *Mask) GetAtomic(i int64) bool {
	return atomic.LoadUint64(&m.words[i/wordBits])&(1<<uint(i%wordBits)) != 0
}

// Reset clears all bits.
func (m *Mask) Reset() {
	for i := range m.words {
		m.words[i] = 0
	}
}

// Fill sets all n bits (trailing bits of the last word stay clear).
func (m *Mask) Fill() {
	for i := range m.words {
		m.words[i] = ^uint64(0)
	}
	m.trim()
}

// trim zeroes the unused high bits of the final word so Count and Equal see a
// canonical representation.
func (m *Mask) trim() {
	if rem := m.n % wordBits; rem != 0 && len(m.words) > 0 {
		m.words[len(m.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits.
func (m *Mask) Count() int64 {
	var c int64
	for _, w := range m.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// Any reports whether any bit is set.
func (m *Mask) Any() bool {
	for _, w := range m.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or sets m |= other. Both masks must have identical length.
func (m *Mask) Or(other *Mask) {
	m.mustMatch(other)
	for i, w := range other.words {
		m.words[i] |= w
	}
}

// OrAtomic performs m |= other with atomic word updates, safe against
// concurrent SetAtomic calls on m.
func (m *Mask) OrAtomic(other *Mask) {
	m.mustMatch(other)
	for i, w := range other.words {
		if w != 0 {
			atomic.OrUint64(&m.words[i], w)
		}
	}
}

// AndNot sets m &^= other (clears every bit that is set in other).
func (m *Mask) AndNot(other *Mask) {
	m.mustMatch(other)
	for i, w := range other.words {
		m.words[i] &^= w
	}
}

// CopyFrom overwrites m with other's bits.
func (m *Mask) CopyFrom(other *Mask) {
	m.mustMatch(other)
	copy(m.words, other.words)
}

// Clone returns an independent copy.
func (m *Mask) Clone() *Mask {
	c := New(m.n)
	copy(c.words, m.words)
	return c
}

// Equal reports whether two masks have the same length and bits.
func (m *Mask) Equal(other *Mask) bool {
	if m.n != other.n {
		return false
	}
	for i, w := range m.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Diff writes (other &^ m) into dst — the bits newly set in other relative to
// m — and returns the number of such bits. dst may alias other but not m.
// The BFS engine uses Diff to extract the per-iteration delegate frontier
// from the globally reduced visited mask.
func (m *Mask) Diff(other, dst *Mask) int64 {
	m.mustMatch(other)
	m.mustMatch(dst)
	var c int64
	for i := range m.words {
		nw := other.words[i] &^ m.words[i]
		dst.words[i] = nw
		c += int64(bits.OnesCount64(nw))
	}
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (m *Mask) ForEach(fn func(i int64)) {
	for wi, w := range m.words {
		base := int64(wi) * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + int64(tz))
			w &= w - 1
		}
	}
}

// AppendSetBits appends the indices of all set bits to dst and returns it.
func (m *Mask) AppendSetBits(dst []int64) []int64 {
	m.ForEach(func(i int64) { dst = append(dst, i) })
	return dst
}

func (m *Mask) mustMatch(other *Mask) {
	if m.n != other.n {
		panic(fmt.Sprintf("bitmask: length mismatch %d vs %d", m.n, other.n))
	}
}

// CountExcluding returns popcount(m &^ sub0 &^ sub1 ...) without
// materializing the intermediate mask — the backward-pull kernels size their
// candidate sets this way (unvisited ∩ source-mask).
func (m *Mask) CountExcluding(subs ...*Mask) int64 {
	var c int64
	for i, w := range m.words {
		for _, s := range subs {
			m.mustMatch(s)
			w &^= s.words[i]
		}
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// ForEachExcluding calls fn for every bit set in m but in none of subs,
// ascending. The word value is snapshotted before iteration, so fn may set
// bits in subs without affecting the current word's traversal.
func (m *Mask) ForEachExcluding(fn func(i int64), subs ...*Mask) {
	for wi, w := range m.words {
		for _, s := range subs {
			m.mustMatch(s)
			w &^= s.words[wi]
		}
		base := int64(wi) * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + int64(tz))
			w &= w - 1
		}
	}
}

// ReduceOr ORs all src masks word-wise into dst. It is the reference
// implementation of the delegate mask reduction (paper §V-A); the MPI layer
// performs the same fold across ranks.
func ReduceOr(dst *Mask, srcs ...*Mask) {
	for _, s := range srcs {
		dst.Or(s)
	}
}
