package bitmask

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSizes(t *testing.T) {
	cases := []struct {
		n     int64
		words int
	}{{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {1000, 16}}
	for _, c := range cases {
		m := New(c.n)
		if len(m.Words()) != c.words {
			t.Errorf("New(%d): got %d words, want %d", c.n, len(m.Words()), c.words)
		}
		if m.Len() != c.n {
			t.Errorf("New(%d).Len() = %d", c.n, m.Len())
		}
		if m.ByteSize() != int64(c.words)*8 {
			t.Errorf("New(%d).ByteSize() = %d, want %d", c.n, m.ByteSize(), c.words*8)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	m := New(200)
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 128, 199} {
		if m.Get(i) {
			t.Fatalf("bit %d set in fresh mask", i)
		}
		m.Set(i)
		if !m.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		m.Clear(i)
		if m.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestCountAnyReset(t *testing.T) {
	m := New(300)
	if m.Any() {
		t.Fatal("fresh mask Any() = true")
	}
	idx := []int64{0, 5, 64, 200, 299}
	for _, i := range idx {
		m.Set(i)
	}
	if got := m.Count(); got != int64(len(idx)) {
		t.Fatalf("Count = %d, want %d", got, len(idx))
	}
	if !m.Any() {
		t.Fatal("Any() = false after sets")
	}
	m.Reset()
	if m.Any() || m.Count() != 0 {
		t.Fatal("Reset did not clear mask")
	}
}

func TestFillRespectsLength(t *testing.T) {
	for _, n := range []int64{1, 63, 64, 65, 130} {
		m := New(n)
		m.Fill()
		if got := m.Count(); got != n {
			t.Errorf("Fill(%d): Count = %d", n, got)
		}
	}
}

func TestSetAtomicReportsTransition(t *testing.T) {
	m := New(128)
	if !m.SetAtomic(77) {
		t.Fatal("first SetAtomic returned false")
	}
	if m.SetAtomic(77) {
		t.Fatal("second SetAtomic returned true")
	}
	if !m.GetAtomic(77) {
		t.Fatal("GetAtomic(77) = false")
	}
}

func TestSetAtomicConcurrent(t *testing.T) {
	const n = 4096
	const workers = 8
	m := New(n)
	var wins [workers]int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < n; i++ {
				if m.SetAtomic(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, v := range wins {
		total += v
	}
	if total != n {
		t.Fatalf("total wins = %d, want %d (each bit won exactly once)", total, n)
	}
	if m.Count() != n {
		t.Fatalf("Count = %d, want %d", m.Count(), n)
	}
}

func TestOrAndNotDiff(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(64)
	b.Set(64)
	b.Set(99)

	u := a.Clone()
	u.Or(b)
	for _, i := range []int64{1, 64, 99} {
		if !u.Get(i) {
			t.Errorf("union missing bit %d", i)
		}
	}
	if u.Count() != 3 {
		t.Errorf("union Count = %d, want 3", u.Count())
	}

	d := New(100)
	nNew := a.Diff(b, d) // bits in b not in a
	if nNew != 1 || !d.Get(99) || d.Get(64) {
		t.Errorf("Diff: nNew=%d mask=%v", nNew, d.AppendSetBits(nil))
	}

	c := b.Clone()
	c.AndNot(a)
	if c.Count() != 1 || !c.Get(99) {
		t.Errorf("AndNot left %v", c.AppendSetBits(nil))
	}
}

func TestForEachOrder(t *testing.T) {
	m := New(500)
	want := []int64{3, 63, 64, 128, 400, 499}
	for _, i := range want {
		m.Set(i)
	}
	var got []int64
	m.ForEach(func(i int64) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
}

func TestFromWordsAliases(t *testing.T) {
	words := make([]uint64, 2)
	m := FromWords(100, words)
	m.Set(65)
	if words[1] != 2 {
		t.Fatalf("FromWords does not alias: words[1] = %d", words[1])
	}
}

func TestFromWordsShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromWords with short slice did not panic")
		}
	}()
	FromWords(129, make([]uint64, 2))
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	New(10).Or(New(11))
}

func TestReduceOrMatchesSequentialFold(t *testing.T) {
	const n = 777
	rng := rand.New(rand.NewSource(42))
	srcs := make([]*Mask, 5)
	for i := range srcs {
		srcs[i] = New(n)
		for j := 0; j < 50; j++ {
			srcs[i].Set(rng.Int63n(n))
		}
	}
	got := New(n)
	ReduceOr(got, srcs...)
	want := New(n)
	for _, s := range srcs {
		for i := int64(0); i < n; i++ {
			if s.Get(i) {
				want.Set(i)
			}
		}
	}
	if !got.Equal(want) {
		t.Fatal("ReduceOr != sequential fold")
	}
}

// Property: for random bit sets, Count(a|b) + Count(a&^b intersected...) —
// verify inclusion-exclusion via Diff: Count(a) + Diff(a→b) == Count(a|b).
func TestQuickUnionCount(t *testing.T) {
	f := func(seedsA, seedsB []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, s := range seedsA {
			a.Set(int64(s))
		}
		for _, s := range seedsB {
			b.Set(int64(s))
		}
		u := a.Clone()
		u.Or(b)
		d := New(n)
		newBits := a.Diff(b, d)
		return a.Count()+newBits == u.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Or is commutative and idempotent.
func TestQuickOrAlgebra(t *testing.T) {
	f := func(seedsA, seedsB []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, s := range seedsA {
			a.Set(int64(s))
		}
		for _, s := range seedsB {
			b.Set(int64(s))
		}
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		abb := ab.Clone()
		abb.Or(b)
		return ab.Equal(ba) && abb.Equal(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOrAtomicMatchesOr(t *testing.T) {
	a := New(1000)
	b := New(1000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a.Set(rng.Int63n(1000))
		b.Set(rng.Int63n(1000))
	}
	plain := a.Clone()
	plain.Or(b)
	at := a.Clone()
	at.OrAtomic(b)
	if !plain.Equal(at) {
		t.Fatal("OrAtomic != Or")
	}
}

func BenchmarkSetAtomic(b *testing.B) {
	m := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SetAtomic(int64(i) & (1<<20 - 1))
	}
}

func BenchmarkOr(b *testing.B) {
	x := New(1 << 20)
	y := New(1 << 20)
	y.Fill()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}
