package g500

import (
	"testing"

	"gcbfs/internal/baseline"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

func TestValidateAcceptsSerialBFS(t *testing.T) {
	for _, el := range []*graph.EdgeList{
		gen.Path(20),
		gen.Star(15),
		gen.Grid2D(4, 5),
		rmat.Generate(rmat.DefaultParams(8)),
	} {
		c := graph.BuildCSR(el)
		deg := el.OutDegrees()
		var src int64
		for deg[src] == 0 {
			src++
		}
		levels := baseline.SerialBFS(c, src)
		if err := Validate(el, src, levels); err != nil {
			t.Fatalf("valid BFS rejected: %v", err)
		}
	}
}

func TestValidateRejectsBadSource(t *testing.T) {
	el := gen.Path(5)
	levels := baseline.SerialBFS(graph.BuildCSR(el), 0)
	if err := Validate(el, 99, levels); err == nil {
		t.Fatal("accepted out-of-range source")
	}
	levels[0] = 3
	if err := Validate(el, 0, levels); err == nil {
		t.Fatal("accepted source level != 0")
	}
}

func TestValidateRejectsLevelJump(t *testing.T) {
	el := gen.Path(5)
	levels := baseline.SerialBFS(graph.BuildCSR(el), 0)
	levels[3] = 5 // edge 2–3 now spans 2→5
	if err := Validate(el, 0, levels); err == nil {
		t.Fatal("accepted level jump across an edge")
	}
}

func TestValidateRejectsUnvisitedNeighbor(t *testing.T) {
	el := gen.Path(5)
	levels := baseline.SerialBFS(graph.BuildCSR(el), 0)
	levels[4] = -1
	if err := Validate(el, 0, levels); err == nil {
		t.Fatal("accepted visited vertex with unvisited neighbor")
	}
}

func TestValidateRejectsOrphanLevel(t *testing.T) {
	// Two components: 0–1 and 2–3. Mark 2,3 visited with no path.
	el := graph.NewEdgeList(4)
	el.Add(0, 1)
	el.Add(1, 0)
	el.Add(2, 3)
	el.Add(3, 2)
	levels := []int32{0, 1, 5, 6}
	if err := Validate(el, 0, levels); err == nil {
		t.Fatal("accepted orphan component levels (no parent at level 4)")
	}
}

func TestValidateRejectsBadSentinel(t *testing.T) {
	el := graph.NewEdgeList(3)
	el.Add(0, 1)
	el.Add(1, 0)
	levels := []int32{0, 1, -7}
	if err := Validate(el, 0, levels); err == nil {
		t.Fatal("accepted level < -1")
	}
}

func TestValidateLengthMismatch(t *testing.T) {
	el := gen.Path(5)
	if err := Validate(el, 0, make([]int32, 3)); err == nil {
		t.Fatal("accepted short levels array")
	}
}

func TestCompareLevels(t *testing.T) {
	if err := CompareLevels([]int32{1, 2}, []int32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := CompareLevels([]int32{1}, []int32{1, 2}); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if err := CompareLevels([]int32{1, 3}, []int32{1, 2}); err == nil {
		t.Fatal("accepted value mismatch")
	}
}

func TestVisitedCount(t *testing.T) {
	if got := VisitedCount([]int32{0, -1, 3, -1, 2}); got != 3 {
		t.Fatalf("VisitedCount = %d", got)
	}
}
