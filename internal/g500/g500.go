// Package g500 adapts the Graph500 result-validation rules (§VI-A3) to the
// hop-distance output this implementation produces (the paper outputs
// hop-distances rather than the BFS tree, arguing the tree adds negligible
// cost). The checks mirror the spec's five validation rules, restated for
// distance arrays on symmetric graphs:
//
//  1. the source has distance 0;
//  2. every edge's endpoints differ by at most one level when both are
//     visited;
//  3. on a symmetric graph, a visited vertex's neighbor is always visited;
//  4. every visited non-source vertex has a parent edge (a neighbor exactly
//     one level closer);
//  5. vertices outside the source's component are unvisited (-1).
package g500

import (
	"fmt"

	"gcbfs/internal/graph"
)

// Validate checks a hop-distance array against the edge list. The graph must
// be symmetric (every undirected edge present in both directions), as the
// paper's system assumes.
func Validate(el *graph.EdgeList, source int64, levels []int32) error {
	if int64(len(levels)) != el.N {
		return fmt.Errorf("g500: levels length %d, graph has %d vertices", len(levels), el.N)
	}
	if source < 0 || source >= el.N {
		return fmt.Errorf("g500: source %d out of range", source)
	}
	// Rule 1.
	if levels[source] != 0 {
		return fmt.Errorf("g500: source level = %d, want 0", levels[source])
	}
	// Rules 2 and 3 over every directed edge.
	for _, e := range el.Edges {
		lu, lv := levels[e.U], levels[e.V]
		switch {
		case lu >= 0 && lv >= 0:
			if d := lu - lv; d > 1 || d < -1 {
				return fmt.Errorf("g500: edge %d→%d spans levels %d→%d", e.U, e.V, lu, lv)
			}
		case lu >= 0 && lv < 0:
			return fmt.Errorf("g500: visited %d (level %d) has unvisited neighbor %d", e.U, lu, e.V)
		case lu < 0 && lv >= 0:
			return fmt.Errorf("g500: unvisited %d has visited neighbor %d (level %d)", e.U, e.V, lv)
		}
	}
	// Rule 4: parent existence, via one adjacency pass.
	c := graph.BuildCSR(el)
	for u := int64(0); u < el.N; u++ {
		lu := levels[u]
		if lu <= 0 {
			continue
		}
		found := false
		for _, v := range c.Neighbors(u) {
			if levels[v] == lu-1 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("g500: vertex %d at level %d has no parent", u, lu)
		}
	}
	// Rule 5: negative levels must be exactly -1 (no other sentinel).
	for v, l := range levels {
		if l < -1 {
			return fmt.Errorf("g500: vertex %d has invalid level %d", v, l)
		}
	}
	return nil
}

// ValidateTree checks a BFS tree (the Graph500 deliverable) against the
// graph and the hop distances: the source is its own parent; every other
// visited vertex's parent is a real neighbor exactly one level closer; and
// unvisited vertices carry no parent.
func ValidateTree(el *graph.EdgeList, source int64, parents []int64, levels []int32) error {
	if int64(len(parents)) != el.N || int64(len(levels)) != el.N {
		return fmt.Errorf("g500: tree arrays sized %d/%d, graph has %d vertices",
			len(parents), len(levels), el.N)
	}
	if parents[source] != source {
		return fmt.Errorf("g500: parent[source] = %d, want %d", parents[source], source)
	}
	if levels[source] != 0 {
		return fmt.Errorf("g500: source level = %d", levels[source])
	}
	edges := make(map[graph.Edge]bool, len(el.Edges))
	for _, e := range el.Edges {
		edges[e] = true
	}
	for v := int64(0); v < el.N; v++ {
		p := parents[v]
		if levels[v] < 0 {
			if p != -1 {
				return fmt.Errorf("g500: unvisited vertex %d has parent %d", v, p)
			}
			continue
		}
		if v == source {
			continue
		}
		if p < 0 || p >= el.N {
			return fmt.Errorf("g500: vertex %d has invalid parent %d", v, p)
		}
		if levels[p] != levels[v]-1 {
			return fmt.Errorf("g500: vertex %d (level %d) has parent %d at level %d",
				v, levels[v], p, levels[p])
		}
		if !edges[graph.Edge{U: p, V: v}] {
			return fmt.Errorf("g500: tree edge %d→%d not in graph", p, v)
		}
	}
	return nil
}

// CompareLevels checks two distance arrays for exact equality and returns
// the first mismatch.
func CompareLevels(got, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("g500: length mismatch %d vs %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("g500: vertex %d: got level %d, want %d", v, got[v], want[v])
		}
	}
	return nil
}

// VisitedCount returns the number of reached vertices.
func VisitedCount(levels []int32) int64 {
	var c int64
	for _, l := range levels {
		if l >= 0 {
			c++
		}
	}
	return c
}
