package gcbfs

import (
	"context"
	"errors"
	"testing"
	"time"

	"gcbfs/internal/faults"
	"gcbfs/internal/wire"
)

// chaosConfig is the standard fault-tolerance test configuration: the
// checksummed adaptive codec (corrupt bit flips in the fixed-width packing
// have no CRC to catch them), parents collected so recovery can assert full
// bit-identity.
func chaosConfig(c Cluster) Config {
	cfg := DefaultConfig(c)
	cfg.Compression = CompressionAdaptive
	cfg.CollectParents = true
	return cfg
}

// TestRetryRecoversFromTransientFaults sweeps injector seeds until retried
// queries recover, and asserts every recovery is bit-identical to the
// fault-free run while every failure is fault-typed.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	g := RMAT(10)
	cluster := Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	clean, err := NewService(g, chaosConfig(cluster))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clean.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}

	recovered := 0
	for seed := uint64(1); seed <= 24; seed++ {
		cfg := chaosConfig(cluster)
		cfg.Inject = faults.New(seed, faults.KindCorrupt, 0.3)
		cfg.Retry = RetryPolicy{MaxAttempts: 8}
		svc, err := NewService(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := svc.Run(context.Background(), 0)
		if err != nil {
			if !errors.Is(err, wire.ErrCorrupt) && !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("seed %d: untyped failure escaped containment: %v", seed, err)
			}
			continue
		}
		if r.Attempts < 1 {
			t.Fatalf("seed %d: successful run reports %d attempts", seed, r.Attempts)
		}
		if r.Attempts > 1 {
			recovered++
			st := svc.FaultStats()
			if st.Retries == 0 || st.Injected == 0 {
				t.Fatalf("seed %d: recovery after %d attempts but stats %+v", seed, r.Attempts, st)
			}
		}
		for v := range ref.Levels {
			if r.Levels[v] != ref.Levels[v] {
				t.Fatalf("seed %d: vertex %d level %d, fault-free %d — recovery silently wrong",
					seed, v, r.Levels[v], ref.Levels[v])
			}
			if r.Parents[v] != ref.Parents[v] {
				t.Fatalf("seed %d: vertex %d parent %d, fault-free %d — recovery silently wrong",
					seed, v, r.Parents[v], ref.Parents[v])
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no seed recovered after a retry — the retry path was never exercised")
	}
}

// TestRetryExhaustionSurfacesTypedError: a rate-1 fault burns the whole
// attempt budget and surfaces as a typed error with the counters to match.
func TestRetryExhaustionSurfacesTypedError(t *testing.T) {
	g := RMAT(9)
	cfg := chaosConfig(Cluster{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2})
	cfg.Inject = faults.New(1, faults.KindCorrupt, 1)
	cfg.Retry = RetryPolicy{MaxAttempts: 3}
	svc, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := svc.Run(context.Background(), 0)
	if err == nil {
		t.Fatal("rate-1 corruption survived the attempt budget")
	}
	if r != nil {
		t.Fatal("partial result escaped alongside the error")
	}
	if !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("error not wire.ErrCorrupt-typed: %v", err)
	}
	st := svc.FaultStats()
	if st.Retries != 2 || st.Exhausted != 1 {
		t.Fatalf("stats %+v, want 2 retries and 1 exhaustion", st)
	}
	if st.Injected == 0 {
		t.Fatal("exhausted the budget with zero recorded injections")
	}
}

// TestRetryDegradation: with DegradeAfter 1 every recovery beyond the first
// attempt must have run the degraded profile and still match bit-identically.
func TestRetryDegradation(t *testing.T) {
	g := RMAT(10)
	cluster := Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	clean, err := NewService(g, chaosConfig(cluster))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clean.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	degradedRecoveries := 0
	for seed := uint64(1); seed <= 24; seed++ {
		cfg := chaosConfig(cluster)
		cfg.Exchange = ExchangeButterfly
		cfg.Inject = faults.New(seed, faults.KindCorrupt, 0.3)
		cfg.Retry = RetryPolicy{MaxAttempts: 8, DegradeAfter: 1}
		svc, err := NewService(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := svc.Run(context.Background(), 0)
		if err != nil || r.Attempts == 1 {
			continue
		}
		if !r.Degraded {
			t.Fatalf("seed %d: recovery on attempt %d with DegradeAfter 1 did not degrade", seed, r.Attempts)
		}
		if st := svc.FaultStats(); st.Degraded == 0 {
			t.Fatalf("seed %d: degraded recovery but stats %+v", seed, st)
		}
		degradedRecoveries++
		for v := range ref.Levels {
			if r.Levels[v] != ref.Levels[v] || r.Parents[v] != ref.Parents[v] {
				t.Fatalf("seed %d: degraded recovery diverged at vertex %d", seed, v)
			}
		}
	}
	if degradedRecoveries == 0 {
		t.Fatal("no seed recovered on the degraded profile")
	}
}

// TestZeroRetryPolicyIsSingleAttempt: the zero policy keeps the pre-retry
// contract — one attempt, typed error straight to the caller.
func TestZeroRetryPolicyIsSingleAttempt(t *testing.T) {
	g := RMAT(9)
	cfg := chaosConfig(Cluster{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2})
	cfg.Inject = faults.New(3, faults.KindCrash, 1)
	svc, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Run(context.Background(), 0)
	if err == nil {
		t.Fatal("rate-1 crash succeeded without retries")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error not faults.ErrInjected-typed: %v", err)
	}
	if st := svc.FaultStats(); st.Retries != 0 {
		t.Fatalf("zero policy retried: %+v", st)
	}
}

// TestQueryTimeout: Config.QueryTimeout bounds the whole query and surfaces
// as context.DeadlineExceeded — final, never retried.
func TestQueryTimeout(t *testing.T) {
	g := RMAT(10)
	cfg := chaosConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2})
	cfg.QueryTimeout = time.Nanosecond
	cfg.Retry = RetryPolicy{MaxAttempts: 5}
	svc, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Run(context.Background(), 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	st := svc.FaultStats()
	if st.Timeouts == 0 {
		t.Fatalf("timeout not counted: %+v", st)
	}
	if st.Retries != 0 {
		t.Fatalf("query-level deadline was retried: %+v", st)
	}
}

// TestWithDeadlineOverride: the per-query deadline overrides the service
// default in both directions.
func TestWithDeadlineOverride(t *testing.T) {
	g := RMAT(10)
	cfg := chaosConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2})
	svc, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(context.Background(), 0, WithDeadline(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// A generous per-query deadline rescues a service configured with an
	// impossible default.
	cfg.QueryTimeout = time.Nanosecond
	tight, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.Run(context.Background(), 0, WithDeadline(time.Minute)); err != nil {
		t.Fatalf("per-query deadline did not override the service default: %v", err)
	}
}

// TestSweepRetry: RunSweep retries per chunk and stamps the attempt counts.
func TestSweepRetry(t *testing.T) {
	g := RMAT(10)
	cluster := Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	sources := []int64{0, 1, 2, 3}
	clean, err := NewService(g, chaosConfig(cluster))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clean.RunSweep(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 24; seed++ {
		cfg := chaosConfig(cluster)
		cfg.Inject = faults.New(seed, faults.KindCorrupt, 0.08)
		cfg.Retry = RetryPolicy{MaxAttempts: 8}
		svc, err := NewService(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		br, err := svc.RunSweep(context.Background(), sources)
		if err != nil {
			if !errors.Is(err, wire.ErrCorrupt) && !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("seed %d: untyped sweep failure: %v", seed, err)
			}
			continue
		}
		for i, r := range br.Results {
			if r.Attempts <= 1 {
				continue
			}
			for v := range ref.Results[i].Levels {
				if r.Levels[v] != ref.Results[i].Levels[v] {
					t.Fatalf("seed %d: sweep recovery diverged at source %d vertex %d", seed, sources[i], v)
				}
			}
			return // one verified retried sweep is the point
		}
	}
	t.Fatal("no sweep recovered after a retry across 24 seeds")
}
