// Social-network scenario (paper §VI-D, Figs. 12–13): BFS over a
// Friendster-like graph — scale-free core, about half the vertices isolated.
// Sweeps the degree threshold to show the wide near-optimal plateau the
// paper reports, then compares BFS vs DOBFS at the best setting. Every sweep
// point answers its sources as one concurrent service batch.
package main

import (
	"context"
	"fmt"
	"log"

	"gcbfs"
)

func main() {
	g := gcbfs.SocialNetwork(12)
	fmt.Printf("friendster-like graph: %d vertices, %d directed edges\n",
		g.NumVertices(), g.NumEdges())
	deg := g.OutDegrees()
	isolated := 0
	for _, d := range deg {
		if d == 0 {
			isolated++
		}
	}
	fmt.Printf("isolated vertices: %.1f%% (Friendster: ~50%%)\n",
		100*float64(isolated)/float64(g.NumVertices()))

	cluster := gcbfs.Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2} // paper: 1×2×2
	sources := gcbfs.Sources(g, 4, 7)
	ctx := context.Background()

	fmt.Println("\nthreshold sweep (paper Fig. 13 — expect a wide good range):")
	fmt.Println("   TH   delegates      BFS GTEPS   DOBFS GTEPS")
	bestTH, bestRate := int64(0), 0.0
	for _, th := range []int64{4, 8, 16, 32, 64} {
		var rates [2]float64
		var delegates int64
		for i, do := range []bool{false, true} {
			cfg := gcbfs.DefaultConfig(cluster)
			cfg.Threshold = th
			cfg.DirectionOptimized = do
			svc, err := gcbfs.NewService(g, cfg)
			if err != nil {
				log.Fatal(err)
			}
			delegates = svc.Delegates()
			batch, err := svc.RunBatch(ctx, sources, gcbfs.BatchOptions{Parallelism: 4})
			if err != nil {
				log.Fatal(err)
			}
			rates[i] = batch.Stats.GeoMeanGTEPS
		}
		fmt.Printf("  %3d   %9d   %10.3f   %10.3f\n", th, delegates, rates[0], rates[1])
		if rates[1] > bestRate {
			bestRate, bestTH = rates[1], th
		}
	}
	fmt.Printf("\nbest DOBFS threshold: TH=%d (%.3f GTEPS)\n", bestTH, bestRate)

	// Validate the winner end to end.
	cfg := gcbfs.DefaultConfig(cluster)
	cfg.Threshold = bestTH
	svc, err := gcbfs.NewService(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := svc.Run(ctx, sources[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Validate(res); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Printf("validated: source %d reaches %d vertices in %d iterations\n",
		res.Source, reached(res.Levels), res.Iterations)
}

func reached(levels []int32) int {
	n := 0
	for _, l := range levels {
		if l >= 0 {
			n++
		}
	}
	return n
}
