// Tuning scenario (paper §VI-B, Fig. 8): how the optimization options —
// direction optimization (DO), Local-All2All (L), Uniquify (U), and
// blocking vs non-blocking delegate reduction (BR/IR) — change the runtime
// composition on a multi-node cluster, plus a mini weak-scaling sweep, an
// exchange-policy comparison (all-pairs vs butterfly vs the per-iteration
// hybrid), and the butterfly hop pipeline on vs off with its hidden-time
// metrics. Each variant stands up a query service and answers its sources
// as one concurrent batch.
package main

import (
	"context"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"gcbfs"
	"gcbfs/internal/bench"
	"gcbfs/internal/faults"
)

func main() {
	g := gcbfs.RMAT(14)
	cluster := gcbfs.Cluster{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2}
	sources := gcbfs.Sources(g, 4, 11)
	ctx := context.Background()

	fmt.Printf("options ablation on %d GPUs (RMAT scale 14):\n", cluster.GPUs())
	fmt.Println("  options      compute   local  normal  delegate  elapsed   (ms)")
	type variant struct {
		name string
		mod  func(*gcbfs.Config)
	}
	variants := []variant{
		{"BFS+BR", func(c *gcbfs.Config) { c.DirectionOptimized = false }},
		{"DO+BR", func(c *gcbfs.Config) {}},
		{"DO+IR", func(c *gcbfs.Config) { c.BlockingReduce = false }},
		{"DO+L+BR", func(c *gcbfs.Config) { c.LocalAll2All = true }},
		{"DO+L+U+BR", func(c *gcbfs.Config) { c.LocalAll2All = true; c.Uniquify = true }},
	}
	for _, v := range variants {
		cfg := gcbfs.DefaultConfig(cluster)
		v.mod(&cfg)
		svc, err := gcbfs.NewService(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		batch, err := svc.RunBatch(ctx, sources, gcbfs.BatchOptions{Parallelism: 2})
		if err != nil {
			log.Fatal(err)
		}
		var comp, local, normal, delegate, elapsed float64
		for _, r := range batch.Results {
			comp += r.Computation
			local += r.LocalComm
			normal += r.RemoteNormal
			delegate += r.RemoteDelegate
			elapsed += r.SimSeconds
		}
		n := float64(len(batch.Results))
		fmt.Printf("  %-10s  %7.3f %7.3f %7.3f  %8.3f  %7.3f\n",
			v.name, comp/n*1e3, local/n*1e3, normal/n*1e3, delegate/n*1e3, elapsed/n*1e3)
	}

	// Exchange policy: all-pairs sends p−1 messages per rank per iteration,
	// the butterfly ~log2(p) aggregated hops (any rank count — 6 ranks here
	// exercises the cleanup hops), and the hybrid picks per iteration from
	// the known frontier volume: butterfly on the latency-bound head and
	// tail of the BFS, all-pairs where volume dominates. Results are
	// bit-identical across all three; only messages and simulated time move.
	fmt.Println("\nexchange policy on 6 ranks (RMAT scale 14, per-query override):")
	fmt.Println("  policy     iters ap/bf  messages  remote-normal  elapsed   (ms)")
	xcluster := gcbfs.Cluster{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 2}
	xsvc, err := gcbfs.NewService(g, gcbfs.DefaultConfig(xcluster))
	if err != nil {
		log.Fatal(err)
	}
	for _, x := range []struct {
		name   string
		policy gcbfs.Exchange
	}{
		{"allpairs", gcbfs.ExchangeAllPairs},
		{"butterfly", gcbfs.ExchangeButterfly},
		{"hybrid", gcbfs.ExchangeHybrid},
	} {
		batch, err := xsvc.RunBatch(ctx, sources, gcbfs.BatchOptions{Parallelism: 2},
			gcbfs.WithExchange(x.policy))
		if err != nil {
			log.Fatal(err)
		}
		var remote, elapsed float64
		for _, r := range batch.Results {
			remote += r.RemoteNormal
			elapsed += r.SimSeconds
		}
		n := float64(len(batch.Results))
		fmt.Printf("  %-9s  %5d/%-5d  %8d  %13.3f  %7.3f\n",
			x.name, batch.Stats.AllPairsIterations, batch.Stats.ButterflyIterations,
			batch.Stats.Messages, remote/n*1e3, elapsed/n*1e3)
	}

	// Pipelined hops (-pipeline in bfsrun, WithPipeline here): the
	// butterfly's per-hop decode/merge/re-encode compute hides under the
	// next hop's transfer, so with a codec active some of the log(p)× codec
	// work disappears from remote-normal time. HiddenCodecSeconds is the
	// reclaimed time; stalls count steps where compute outlasted the wire.
	// Levels and parents are bit-identical on and off. Work amplification
	// lifts the queries into the paper's per-GPU regime, where the codec
	// stages are big enough to be worth hiding.
	fmt.Println("\nbutterfly hop pipeline on 6 ranks (adaptive codec, amplified, per-query override):")
	fmt.Println("  pipeline  codec(ms)  hidden(ms)  stalls  remote-normal  elapsed   (ms)")
	for _, pipe := range []bool{false, true} {
		batch, err := xsvc.RunBatch(ctx, sources, gcbfs.BatchOptions{Parallelism: 2},
			gcbfs.WithExchange(gcbfs.ExchangeButterfly),
			gcbfs.WithCompression(gcbfs.CompressionAdaptive),
			gcbfs.WithWorkAmplification(256),
			gcbfs.WithPipeline(pipe))
		if err != nil {
			log.Fatal(err)
		}
		var codec, remote, elapsed float64
		for _, r := range batch.Results {
			codec += r.CodecSeconds
			remote += r.RemoteNormal
			elapsed += r.SimSeconds
		}
		n := float64(len(batch.Results))
		fmt.Printf("  %-8v  %9.4f  %10.4f  %6d  %13.3f  %7.3f\n",
			pipe, codec/n*1e3, batch.Stats.HiddenCodecSeconds/n*1e3,
			batch.Stats.PipelineStalls, remote/n*1e3, elapsed/n*1e3)
	}

	// Hierarchical exchange (Config.FlatExchange / WithFlatExchange): with 4
	// GPUs per rank, the default two-level exchange merges each rank's four
	// per-destination bins over NVLink into ONE message per destination —
	// flat mode ships each GPU's fragment separately, exactly 4× the message
	// count. The NVLink aggregation time rides the butterfly pipeline as a
	// third resource, so most of it hides under hop transfers
	// (NVLinkSeconds vs HiddenNVLinkSeconds below). Levels and parents are
	// bit-identical in both modes.
	fmt.Println("\nflat vs hierarchical exchange at 4 GPUs/rank (hybrid policy, adaptive codec, amplified):")
	fmt.Println("  mode  messages  nvlink(ms)  hidden(ms)  remote-normal  elapsed   (ms)")
	hcluster := gcbfs.Cluster{Nodes: 4, RanksPerNode: 1, GPUsPerRank: 4}
	hsvc, err := gcbfs.NewService(g, gcbfs.DefaultConfig(hcluster))
	if err != nil {
		log.Fatal(err)
	}
	for _, flat := range []bool{true, false} {
		batch, err := hsvc.RunBatch(ctx, sources, gcbfs.BatchOptions{Parallelism: 2},
			gcbfs.WithExchange(gcbfs.ExchangeHybrid),
			gcbfs.WithCompression(gcbfs.CompressionAdaptive),
			gcbfs.WithWorkAmplification(256),
			gcbfs.WithFlatExchange(flat))
		if err != nil {
			log.Fatal(err)
		}
		var remote, elapsed float64
		for _, r := range batch.Results {
			remote += r.RemoteNormal
			elapsed += r.SimSeconds
		}
		n := float64(len(batch.Results))
		mode := "hier"
		if flat {
			mode = "flat"
		}
		fmt.Printf("  %-4s  %8d  %10.4f  %10.4f  %13.3f  %7.3f\n",
			mode, batch.Stats.Messages, batch.Stats.NVLinkSeconds/n*1e3,
			batch.Stats.HiddenNVLinkSeconds/n*1e3, remote/n*1e3, elapsed/n*1e3)
	}

	// Multi-source shared sweep (MS-BFS, RunSweep): K queries answered by
	// ONE BSP traversal — per-vertex visited state widens to a K-query
	// bitmask riding the record codec — so the graph is scanned once per
	// sweep instead of once per query. Config.SweepWidth caps how many
	// queries share a traversal (requests beyond it are chunked into
	// consecutive sweeps); wider sweeps amortize traversal cost over more
	// queries at ⌈K/64⌉ extra mask words per record. Levels and parents are
	// bit-identical to independent runs; per-query rates are sweep shares.
	// The batch row is the same 64 sources as independent traversals.
	fmt.Println("\nmulti-source sweep width on 6 ranks (64 sources, adaptive codec):")
	fmt.Println("  mode        width  traversals  ms/query  gteps/query")
	msources := gcbfs.Sources(g, 64, 17)
	mbatch, err := xsvc.RunBatch(ctx, msources, gcbfs.BatchOptions{Parallelism: 4},
		gcbfs.WithCompression(gcbfs.CompressionAdaptive))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s  %5s  %10d  %8.3f  %11.3f\n", "batch", "-",
		len(msources), mbatch.Stats.TotalSimSeconds/float64(mbatch.Stats.Runs)*1e3,
		mbatch.Stats.TotalGTEPS)
	for _, width := range []int{8, 32, 64} {
		cfg := gcbfs.DefaultConfig(xcluster)
		cfg.SweepWidth = width
		ssvc, err := gcbfs.NewService(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := ssvc.RunSweep(ctx, msources,
			gcbfs.WithCompression(gcbfs.CompressionAdaptive))
		if err != nil {
			log.Fatal(err)
		}
		traversals := (len(msources) + width - 1) / width
		fmt.Printf("  %-10s  %5d  %10d  %8.3f  %11.3f\n", "sweep", width,
			traversals, sweep.Stats.TotalSimSeconds/float64(sweep.Stats.Runs)*1e3,
			sweep.Stats.TotalGTEPS)
	}

	fmt.Println("\nmini weak scaling (scale-12 RMAT per GPU, DOBFS):")
	fmt.Println("  GPUs  layout  geo-mean GTEPS")
	for _, gpus := range []int{1, 4, 16} {
		scale := 12
		for g := 1; g < gpus; g *= 2 {
			scale++
		}
		wg := gcbfs.RMAT(scale)
		var c gcbfs.Cluster
		switch gpus {
		case 1:
			c = gcbfs.Cluster{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1}
		case 4:
			c = gcbfs.Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2}
		default:
			c = gcbfs.Cluster{Nodes: gpus / 4, RanksPerNode: 2, GPUsPerRank: 2}
		}
		svc, err := gcbfs.NewService(wg, gcbfs.DefaultConfig(c))
		if err != nil {
			log.Fatal(err)
		}
		batch, err := svc.RunBatch(ctx, gcbfs.Sources(wg, 3, 5), gcbfs.BatchOptions{Parallelism: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d  %d×%d×%d  %10.3f\n",
			gpus, c.Nodes, c.RanksPerNode, c.GPUsPerRank, batch.Stats.GeoMeanGTEPS)
	}
	// Reading the benchmark trajectory. Every PR commits a BENCH_<pr>.json
	// at the repo root (go run ./cmd/bfsbench -json BENCH_<pr>.json -quick);
	// CI regenerates the quick suite and diffs it against the latest one, so
	// the numbers below are enforced, not decorative. Per cell key
	// (experiment[/sScale][/rRanks][/config]/metric):
	//
	//	gteps               traversed edges per second across the batch. The
	//	                    simulation is deterministic, so the −5% tolerance
	//	                    only absorbs deliberate timing-model changes; a
	//	                    real slowdown fails CI.
	//	wire_bytes          total compressed bytes on the simulated wire.
	//	                    Exact — a pure function of the codec and pinned
	//	                    inputs, so any drift is a codec bug or a format
	//	                    change that must regenerate the baseline.
	//	hidden_codec_ratio  fraction of codec compute the hop pipeline hid
	//	                    under transfers (−10%: less overlap = regression).
	//	policy_error        |predicted − actual| / actual of the hybrid cost
	//	                    model (+25%: small base, widest band).
	//	allocs_per_query    heap allocations per query at Parallelism 1 and 8
	//	bytes_per_query     (+10%: ReadMemStats noise; falling is free).
	// Fault tolerance: arm the deterministic chaos injector (corrupt bit
	// flips on the simulated wire, caught by the adaptive codec's CRC) and
	// let the retry policy re-execute contained failures — degrading to the
	// flat all-pairs profile after two failed attempts. Every recovery is
	// bit-identical to the fault-free run; an exhausted budget surfaces as a
	// typed error, never a silently wrong result. The full ablation is
	// cmp8: go run ./cmd/bfsbench -exp cmp8.
	fmt.Println("\nfault injection + retry (corrupt@0.05, adaptive codec, 8-attempt budget, degrade after 2):")
	fmt.Println("  seed  injected  attempts  degraded  outcome")
	chaosRef, err := func() (*gcbfs.Result, error) {
		cfg := gcbfs.DefaultConfig(cluster)
		cfg.Compression = gcbfs.CompressionAdaptive
		svc, err := gcbfs.NewService(g, cfg)
		if err != nil {
			return nil, err
		}
		return svc.Run(ctx, sources[0])
	}()
	if err != nil {
		log.Fatal(err)
	}
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := gcbfs.DefaultConfig(cluster)
		cfg.Compression = gcbfs.CompressionAdaptive
		cfg.Inject = faults.New(seed, faults.KindCorrupt, 0.05)
		cfg.Retry = gcbfs.RetryPolicy{MaxAttempts: 8, DegradeAfter: 2}
		svc, err := gcbfs.NewService(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := svc.Run(ctx, sources[0])
		st := svc.FaultStats()
		switch {
		case err != nil:
			fmt.Printf("  %4d  %8d  %8d  %8v  typed error: %v\n",
				seed, st.Injected, st.Retries+1, st.Degraded > 0, err)
		default:
			for v := range chaosRef.Levels {
				if r.Levels[v] != chaosRef.Levels[v] {
					log.Fatalf("seed %d: recovery diverged at vertex %d", seed, v)
				}
			}
			fmt.Printf("  %4d  %8d  %8d  %8v  recovered, bit-identical\n",
				seed, st.Injected, r.Attempts, r.Degraded)
		}
	}
	// Deadlines compose with retries: the per-query (or Config.QueryTimeout)
	// bound caps the whole attempt sequence and is final — expiry is
	// context.DeadlineExceeded, counted in FaultStats.Timeouts, never retried.
	{
		cfg := gcbfs.DefaultConfig(cluster)
		svc, err := gcbfs.NewService(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		_, err = svc.Run(ctx, sources[0], gcbfs.WithDeadline(time.Nanosecond))
		fmt.Printf("  1 ns deadline: err=%v, timeouts=%d\n", err, svc.FaultStats().Timeouts)
	}

	fmt.Println("\nbenchmark trajectory (latest committed BENCH_*.json):")
	if path := latestBenchReport(); path == "" {
		fmt.Println("  none found — generate one: go run ./cmd/bfsbench -json BENCH_<pr>.json -quick")
	} else if rep, err := bench.ReadFile(path); err != nil {
		fmt.Printf("  %s: %v\n", path, err)
	} else {
		fmt.Printf("  %s: schema %d, quick=%v, seed %d, %d cells\n",
			path, rep.Schema, rep.Quick, rep.Seed, len(rep.Cells))
		for _, c := range rep.Cells {
			if c.Metric == "gteps" || c.Metric == "allocs_per_query" {
				fmt.Printf("  %-44s %12.6g %s\n", c.Key(), c.Value, c.Unit)
			}
		}
		fmt.Println("  (diff two reports: go run ./cmd/bfsbench -diff new.json -baseline " + filepath.Base(path) + ")")
	}

	fmt.Println("\n(the paper's full sweeps: go run ./cmd/bfsbench -exp all)")
}

// latestBenchReport finds the highest-numbered committed BENCH_<n>.json,
// looking upward from the working directory so the example works from the
// repo root and from examples/tuning alike.
func latestBenchReport() string {
	best, bestN := "", -1
	for _, dir := range []string{".", "..", "../.."} {
		paths, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		for _, p := range paths {
			var n int
			if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_%d.json", &n); err == nil && n > bestN {
				best, bestN = p, n
			}
		}
		if best != "" {
			return best
		}
	}
	return best
}
