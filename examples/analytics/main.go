// Analytics scenario (paper §VI-D and §VII): running algorithms beyond BFS
// on the same degree-separated substrate. PageRank puts 64-bit scores where
// BFS kept 1-bit visited flags, and connected components propagates 64-bit
// labels — both reuse the delegate reduction and the normal-vertex exchange,
// demonstrating the generalization the paper sketches as future work. All
// three workloads run against one query service's shared partition.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"gcbfs"
)

func main() {
	g := gcbfs.SocialNetwork(12)
	cluster := gcbfs.Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	svc, err := gcbfs.NewService(g, gcbfs.DefaultConfig(cluster))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d directed edges on %d simulated GPUs (TH=%d, %d delegates)\n",
		g.NumVertices(), g.NumEdges(), cluster.GPUs(), svc.Threshold(), svc.Delegates())

	// --- PageRank ---
	pr, err := svc.PageRank(gcbfs.PageRankOptions{MaxIterations: 25, Tolerance: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		v int64
		r float64
	}
	top := make([]ranked, 0, g.NumVertices())
	for v, r := range pr.Ranks {
		top = append(top, ranked{int64(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Printf("\npagerank: %d iterations, %.3f ms simulated\n", pr.Iterations, pr.SimSeconds*1e3)
	fmt.Println("  top-5 vertices:")
	for _, t := range top[:5] {
		fmt.Printf("    vertex %-8d rank %.6f\n", t.v, t.r)
	}
	fmt.Printf("  traffic: %.1f kB normal pairs, %.1f kB delegate scores per run\n",
		float64(pr.BytesNormal)/1024, float64(pr.BytesDelegate)/1024)
	fmt.Println("  (§VI-D: delegate state is 64 bits/vertex here vs BFS's 1 bit)")

	// --- Connected components ---
	cc, err := svc.Components(0)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int64]int64{}
	for _, l := range cc.Labels {
		sizes[l]++
	}
	var biggest, biggestSize int64
	for l, s := range sizes {
		if s > biggestSize {
			biggest, biggestSize = l, s
		}
	}
	fmt.Printf("\ncomponents: %d components in %d iterations (converged=%v, %.3f ms simulated)\n",
		len(sizes), cc.Iterations, cc.Converged, cc.SimSeconds*1e3)
	fmt.Printf("  giant component: id %d with %d vertices (%.1f%%)\n",
		biggest, biggestSize, 100*float64(biggestSize)/float64(g.NumVertices()))
	fmt.Println("  (isolated vertices form singleton components, as in Friendster)")

	// --- BFS on the same service, for contrast ---
	src := gcbfs.Sources(g, 1, 9)[0]
	res, err := svc.Run(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbfs from %d for contrast: %d iterations, %.3f ms — the lightest of the three\n",
		src, res.Iterations, res.SimSeconds*1e3)
}
