// Web-graph scenario (paper §VI-D): BFS over a WDC-like long-tail graph —
// a scale-free core plus long chains, pushing the search to hundreds of
// iterations. Reproduces the paper's observation that on such graphs the
// per-iteration overhead dominates and direction optimization stops paying:
// plain BFS edges out DOBFS (WDC 2012: 84.2 vs 79.7 GTEPS).
package main

import (
	"context"
	"fmt"
	"log"

	"gcbfs"
)

func main() {
	g := gcbfs.WebGraph(12)
	fmt.Printf("web-like graph: %d vertices, %d directed edges\n",
		g.NumVertices(), g.NumEdges())

	cluster := gcbfs.Cluster{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2}
	sources := gcbfs.Sources(g, 3, 3)
	ctx := context.Background()

	type outcome struct {
		name  string
		rate  float64
		iters int
		ms    float64
	}
	var outcomes []outcome
	for _, do := range []bool{false, true} {
		cfg := gcbfs.DefaultConfig(cluster)
		cfg.DirectionOptimized = do
		svc, err := gcbfs.NewService(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		batch, err := svc.RunBatch(ctx, sources, gcbfs.BatchOptions{Parallelism: 3})
		if err != nil {
			log.Fatal(err)
		}
		name := "BFS  "
		if do {
			name = "DOBFS"
		}
		var iters int
		var msSum float64
		for _, r := range batch.Results {
			if r.Iterations > iters {
				iters = r.Iterations
			}
			msSum += r.SimSeconds * 1e3
		}
		// Validate one run per mode.
		one, err := svc.Run(ctx, sources[0])
		if err != nil {
			log.Fatal(err)
		}
		if err := svc.Validate(one); err != nil {
			log.Fatalf("%s validation failed: %v", name, err)
		}
		outcomes = append(outcomes, outcome{
			name:  name,
			rate:  batch.Stats.GeoMeanGTEPS,
			iters: iters,
			ms:    msSum / float64(len(batch.Results)),
		})
	}

	fmt.Println("\nlong-tail traversal (validated against serial BFS):")
	for _, o := range outcomes {
		fmt.Printf("  %s  %8.4f GTEPS  max %4d iterations  mean %7.3f ms\n",
			o.name, o.rate, o.iters, o.ms)
	}
	if outcomes[0].rate >= outcomes[1].rate {
		fmt.Println("\nas in the paper: on long-tail graphs plain BFS matches or beats DOBFS —")
		fmt.Println("tiny frontiers make the direction-decision work pure overhead.")
	} else {
		fmt.Println("\nnote: DOBFS won here; try longer chains (deeper tail) to see the crossover.")
	}
}
