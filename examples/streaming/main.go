// Streaming: serve BFS queries over a graph that keeps changing. A
// MutableService versions the partitioned plan by epoch — every ApplyDelta
// builds the next epoch beside the live one and publishes it with a single
// atomic swap, so queries never wait on a rebuild — and Repair advances a
// prior epoch's result across a delta without re-traversing the unchanged
// bulk, bit-identical to recomputing from scratch.
package main

import (
	"context"
	"fmt"
	"log"

	"gcbfs"
)

func main() {
	// Same cluster shape as the quickstart, but behind a MutableService:
	// epoch 1 is partitioned exactly as NewService would, and the degree
	// threshold is fixed now so later epochs keep comparable delegate sets.
	g := gcbfs.RMAT(14)
	cluster := gcbfs.Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	svc, err := gcbfs.NewMutableService(g, gcbfs.DefaultConfig(cluster))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: %d vertices, %d directed edges, TH=%d\n",
		svc.Epoch(), g.NumVertices(), g.NumEdges(), svc.Threshold())

	ctx := context.Background()
	src := gcbfs.Sources(g, 1, 3)[0]

	// Repair needs the full tree, so ask for parents up front. Levels are
	// on by default.
	full, err := svc.Run(ctx, src, gcbfs.WithParents(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d query from %d: %d iterations, %.3f ms simulated, %.2f GTEPS\n",
		full.Epoch, full.Source, full.Iterations, full.SimSeconds*1e3, full.GTEPS)

	// Advance the graph by a tiny synthetic delta — one edge in 100,000,
	// half inserts half deletes, deterministic under the seed. bfsrun
	// -updates replays exactly this substrate. Small deltas leave most
	// per-GPU routed edge streams untouched, so the epoch build shares
	// those subgraphs with epoch 1 instead of rebuilding them.
	d, err := gcbfs.SynthesizeDelta(svc.Graph(), 0.00001, "mixed", 42)
	if err != nil {
		log.Fatal(err)
	}
	up, err := svc.ApplyDelta(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied delta (+%d/−%d edges) → epoch %d in %.1f ms wall; %d/%d per-GPU subgraphs reused\n",
		len(d.Inserts), len(d.Deletes), up.Epoch, up.BuildSeconds*1e3,
		up.SharedGPUs, cluster.GPUs())

	// Repair the old result onto the new epoch: the corrective traversal
	// seeds only from the vertices the delta can move, then settles through
	// the same exchange stack as a full query.
	repaired, err := svc.Repair(ctx, full, d, gcbfs.WithParents(true))
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Validate(repaired); err != nil {
		log.Fatalf("repair validation failed: %v", err)
	}
	fmt.Printf("repair: %d iterations, %.3f ms simulated (validated on epoch %d)\n",
		repaired.Iterations, repaired.SimSeconds*1e3, repaired.Epoch)

	// The guarantee worth paying for: repair is bit-identical to a full
	// recompute on the new epoch — same levels, same parents — it just
	// skips the unchanged bulk.
	scratch, err := svc.Run(ctx, src, gcbfs.WithParents(true))
	if err != nil {
		log.Fatal(err)
	}
	for v := range scratch.Levels {
		if repaired.Levels[v] != scratch.Levels[v] || repaired.Parents[v] != scratch.Parents[v] {
			log.Fatalf("vertex %d: repair diverged from recompute", v)
		}
	}
	speedup := scratch.SimSeconds / repaired.SimSeconds
	fmt.Printf("recompute from scratch: %.3f ms simulated → repair is %.1fx cheaper, bit-identical\n",
		scratch.SimSeconds*1e3, speedup)

	// Queries in flight across a swap finish on their admission epoch; a
	// Snapshot pins one explicitly. The old epoch's plan and pooled
	// sessions stay valid untouched — only new calls see the new epoch.
	pinned := svc.Snapshot()
	if _, err := svc.ApplyDelta(&gcbfs.Delta{Inserts: []gcbfs.Edge{{U: 1, V: 2}}}); err != nil {
		log.Fatal(err)
	}
	old, err := pinned.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter another swap: live epoch %d, pinned snapshot still answers on epoch %d\n",
		svc.Epoch(), old.Epoch)
}
