// Quickstart: build a small Graph500 RMAT graph, stand up the BFS query
// service on a simulated 4-node GPU cluster, answer single and concurrent
// batch queries against the shared partition, and print the paper's headline
// metrics (GTEPS, iteration count, timing breakdown).
package main

import (
	"context"
	"fmt"
	"log"

	"gcbfs"
)

func main() {
	// A scale-14 Graph500 RMAT graph: 16,384 vertices, 1M directed edges
	// (edge factor 16, doubled for symmetry), vertex ids randomized.
	g := gcbfs.RMAT(14)
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	// The paper's CORAL-style layout: nodes × ranks/node × GPUs/rank. The
	// service partitions the graph once; every query after that shares the
	// immutable plan through pooled per-query sessions.
	cluster := gcbfs.Cluster{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2}
	svc, err := gcbfs.NewService(g, gcbfs.DefaultConfig(cluster))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d simulated GPUs | auto threshold TH=%d → %d delegates\n",
		cluster.GPUs(), svc.Threshold(), svc.Delegates())

	mem := svc.Memory()
	fmt.Printf("memory: %.2f MB (vs %.2f MB conventional edge list — the Table I saving)\n",
		float64(mem.TotalBytes)/(1<<20), float64(mem.EdgeListBytes)/(1<<20))

	ctx := context.Background()

	// One query, with per-query overrides: with 8 ranks (a power of two)
	// the butterfly exchange replaces the p−1 all-pairs sends with
	// log2(p)=3 aggregated hops, and the adaptive codec shrinks the
	// frontier payloads — results are identical, only message pattern and
	// simulated time move. Neither override re-partitions anything.
	src := gcbfs.Sources(g, 1, 1)[0]
	res, err := svc.Run(ctx, src,
		gcbfs.WithExchange(gcbfs.ExchangeButterfly),
		gcbfs.WithCompression(gcbfs.CompressionAdaptive))
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Validate(res); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Printf("\nsingle query from %d: %d iterations, %.3f ms simulated, %.2f GTEPS (validated, %s exchange)\n",
		res.Source, res.Iterations, res.SimSeconds*1e3, res.GTEPS, res.Exchange)
	fmt.Printf("   breakdown: compute %.3f ms | local %.3f ms | normal-exchange %.3f ms | delegate-reduce %.3f ms\n",
		res.Computation*1e3, res.LocalComm*1e3, res.RemoteNormal*1e3, res.RemoteDelegate*1e3)

	// The paper's §VI-A methodology — many random sources per data point —
	// as one concurrent batch: 4 queries in flight over the shared
	// partition, results deterministic and source-ordered.
	sources := gcbfs.Sources(g, 12, 1)
	batch, err := svc.RunBatch(ctx, sources, gcbfs.BatchOptions{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch of %d queries, 4 in flight:\n", batch.Stats.Runs)
	for _, r := range batch.Results[:3] {
		fmt.Printf("   source %6d: %d iterations, %.3f ms, %.2f GTEPS\n",
			r.Source, r.Iterations, r.SimSeconds*1e3, r.GTEPS)
	}
	fmt.Printf("   ... and %d more\n", len(batch.Results)-3)
	fmt.Printf("   geo-mean %.2f GTEPS (%d runs, %d filtered) | total %.2f GTEPS | %.3f ms simulated in total\n",
		batch.Stats.GeoMeanGTEPS, batch.Stats.Runs, batch.Stats.Filtered,
		batch.Stats.TotalGTEPS, batch.Stats.TotalSimSeconds*1e3)
}
