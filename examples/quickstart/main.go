// Quickstart: build a small Graph500 RMAT graph, run direction-optimized
// BFS on a simulated 4-node GPU cluster, validate the result, and print the
// paper's headline metrics (GTEPS, iteration count, timing breakdown).
package main

import (
	"fmt"
	"log"

	"gcbfs"
)

func main() {
	// A scale-14 Graph500 RMAT graph: 16,384 vertices, 1M directed edges
	// (edge factor 16, doubled for symmetry), vertex ids randomized.
	g := gcbfs.RMAT(14)
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	// The paper's CORAL-style layout: nodes × ranks/node × GPUs/rank.
	cluster := gcbfs.Cluster{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2}
	cfg := gcbfs.DefaultConfig(cluster)
	// With 8 ranks (a power of two) the butterfly exchange replaces the
	// p−1 all-pairs sends with log2(p)=3 aggregated hops per iteration;
	// results are identical, only message pattern and simulated time move.
	cfg.Exchange = gcbfs.ExchangeButterfly
	solver, err := gcbfs.NewSolver(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d simulated GPUs | auto threshold TH=%d → %d delegates\n",
		cluster.GPUs(), solver.Threshold(), solver.Delegates())

	mem := solver.Memory()
	fmt.Printf("memory: %.2f MB (vs %.2f MB conventional edge list — the Table I saving)\n",
		float64(mem.TotalBytes)/(1<<20), float64(mem.EdgeListBytes)/(1<<20))

	// Run BFS from three random sources, as the paper's methodology does.
	for _, src := range gcbfs.Sources(g, 3, 1) {
		res, err := solver.Run(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := solver.Validate(res); err != nil {
			log.Fatalf("validation failed: %v", err)
		}
		fmt.Printf("source %6d: %d iterations, %.3f ms simulated, %.2f GTEPS (validated, %s exchange)\n",
			res.Source, res.Iterations, res.SimSeconds*1e3, res.GTEPS, res.Exchange)
		fmt.Printf("   breakdown: compute %.3f ms | local %.3f ms | normal-exchange %.3f ms | delegate-reduce %.3f ms\n",
			res.Computation*1e3, res.LocalComm*1e3, res.RemoteNormal*1e3, res.RemoteDelegate*1e3)
	}
}
