// bfsbench regenerates the paper's tables and figures on the simulated GPU
// cluster. Run with -exp all (default) or a specific id; see -list for the
// available experiments.
//
// Usage:
//
//	bfsbench -list
//	bfsbench -exp fig9
//	bfsbench -exp all -quick -sources 3
package main

import (
	"flag"
	"fmt"
	"os"

	"gcbfs/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick   = flag.Bool("quick", false, "reduced scales (same settings as the bench harness)")
		sources = flag.Int("sources", 0, "BFS runs per data point (0 = default)")
		seed    = flag.Int64("seed", 0, "source-selection seed (0 = default)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		desc := experiments.Describe()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, desc[id])
		}
		return
	}

	params := experiments.Params{Quick: *quick, Sources: *sources, Seed: *seed}
	if *exp == "all" {
		if err := experiments.RunAll(params, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	run, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "bfsbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	tab, err := run(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsbench: %s: %v\n", *exp, err)
		os.Exit(1)
	}
	tab.Render(os.Stdout)
}
