// bfsbench regenerates the paper's tables and figures on the simulated GPU
// cluster, and runs the pinned benchmark-trajectory suite whose JSON reports
// are diffed across PRs. Run with -exp all (default) or a specific id; see
// -list for the available experiments.
//
// Usage:
//
//	bfsbench -list
//	bfsbench -exp fig9
//	bfsbench -exp all -quick -sources 3
//	bfsbench -json BENCH_7.json -quick            # write a trajectory report
//	bfsbench -diff /tmp/b.json -baseline BENCH_6.json
//
// Every PR regenerates BENCH_<pr>.json at the repo root via -json -quick and
// cites the -diff against the previous baseline in CHANGES.md; CI re-runs the
// quick suite and fails on regression (see internal/bench for the metric
// tolerances).
package main

import (
	"flag"
	"fmt"
	"os"

	"gcbfs/internal/bench"
	"gcbfs/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick    = flag.Bool("quick", false, "reduced scales (same settings as the bench harness)")
		sources  = flag.Int("sources", 0, "BFS runs per data point (0 = default)")
		seed     = flag.Int64("seed", 0, "source-selection seed (0 = default)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut  = flag.String("json", "", "run the pinned trajectory suite and write the JSON report to this path")
		diffPath = flag.String("diff", "", "diff this report against -baseline; exit non-zero on regression")
		baseline = flag.String("baseline", "", "baseline report for -diff")
	)
	flag.Parse()

	// Validate before anything downstream can panic on a nonsense value: a
	// negative source count would spin the rejection sampler and a negative
	// seed silently means "default" nowhere else.
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bfsbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *sources < 0 {
		usage("-sources must be >= 0 (0 = default), got %d", *sources)
	}
	if *seed < 0 {
		usage("-seed must be >= 0 (0 = default), got %d", *seed)
	}
	if *diffPath != "" && *baseline == "" {
		usage("-diff requires -baseline")
	}

	if *list {
		desc := experiments.Describe()
		fullDefault := experiments.Params{}.DefaultSources()
		quickDefault := experiments.Params{Quick: true}.DefaultSources()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, desc[id])
		}
		fmt.Printf("\n-sources 0 uses the default per run mode: %d (full), %d (-quick)\n",
			fullDefault, quickDefault)
		return
	}

	if *diffPath != "" {
		base, err := bench.ReadFile(*baseline)
		if err != nil {
			fatal("%v", err)
		}
		cur, err := bench.ReadFile(*diffPath)
		if err != nil {
			fatal("%v", err)
		}
		d, err := bench.Diff(base, cur)
		if err != nil {
			fatal("%v", err)
		}
		d.Render(os.Stdout)
		if !d.OK() {
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		rep, err := bench.Run(bench.Params{Quick: *quick, Seed: *seed})
		if err != nil {
			fatal("%v", err)
		}
		if err := rep.WriteFile(*jsonOut); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s (%d cells, quick=%v, seed=%d)\n", *jsonOut, len(rep.Cells), rep.Quick, rep.Seed)
		return
	}

	params := experiments.Params{Quick: *quick, Sources: *sources, Seed: *seed}
	if *exp == "all" {
		if err := experiments.RunAll(params, os.Stdout); err != nil {
			fatal("%v", err)
		}
		return
	}
	run, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "bfsbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	tab, err := run(params)
	if err != nil {
		fatal("%s: %v", *exp, err)
	}
	tab.Render(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bfsbench: "+format+"\n", args...)
	os.Exit(1)
}
