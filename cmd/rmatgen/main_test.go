package main

import (
	"bytes"
	"testing"

	"gcbfs/internal/graph"
)

func TestBuildGraphKinds(t *testing.T) {
	for _, kind := range []string{"rmat", "social", "web"} {
		el, err := buildGraph(kind, 8, 16, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if el.M() == 0 {
			t.Fatalf("%s: empty graph", kind)
		}
		if err := el.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestBuildGraphUnknownKind(t *testing.T) {
	if _, err := buildGraph("nope", 8, 16, 0); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestBuildGraphSeedChangesRMAT(t *testing.T) {
	a, err := buildGraph("rmat", 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildGraph("rmat", 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestGeneratedGraphSerializes(t *testing.T) {
	el, err := buildGraph("rmat", 8, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := graph.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != el.M() || got.N != el.N {
		t.Fatal("round trip changed sizes")
	}
}
