// rmatgen generates benchmark graphs and writes them in the binary edge-list
// format consumed by bfsrun.
//
// Usage:
//
//	rmatgen -scale 20 -o scale20.gcbf
//	rmatgen -type social -scale 14 -o friendsterish.gcbf
//	rmatgen -type web -scale 12 -o webbish.gcbf
package main

import (
	"flag"
	"fmt"
	"os"

	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

func main() {
	var (
		scale   = flag.Int("scale", 16, "graph scale (2^scale vertices for RMAT; core scale for social/web)")
		ef      = flag.Int64("ef", 16, "edge factor (RMAT only)")
		seed    = flag.Uint64("seed", 0, "generator seed (0 = spec default)")
		kind    = flag.String("type", "rmat", "graph type: rmat | social | web")
		outPath = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *outPath == "" {
		fmt.Fprintln(os.Stderr, "rmatgen: -o is required")
		os.Exit(2)
	}

	el, err := buildGraph(*kind, *scale, *ef, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmatgen: %v\n", err)
		os.Exit(2)
	}

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmatgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := graph.WriteBinary(f, el); err != nil {
		fmt.Fprintf(os.Stderr, "rmatgen: writing: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d directed edges (%.1f MB)\n",
		*outPath, el.N, el.M(), float64(el.M()*16+24)/(1<<20))
}

// buildGraph constructs the requested synthetic graph.
func buildGraph(kind string, scale int, ef int64, seed uint64) (*graph.EdgeList, error) {
	switch kind {
	case "rmat":
		p := rmat.DefaultParams(scale)
		p.EdgeFactor = ef
		if seed != 0 {
			p.Seed = seed
		}
		return rmat.Generate(p), nil
	case "social":
		p := gen.DefaultSocialParams(scale)
		if seed != 0 {
			p.Seed = seed
		}
		return gen.SocialNetwork(p), nil
	case "web":
		p := gen.DefaultWebParams(scale)
		if seed != 0 {
			p.Seed = seed
		}
		return gen.WebGraph(p), nil
	default:
		return nil, fmt.Errorf("unknown type %q", kind)
	}
}
