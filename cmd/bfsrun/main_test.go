package main

import (
	"os"
	"path/filepath"
	"testing"

	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
)

func TestLoadGraphFromRMAT(t *testing.T) {
	el, err := loadGraph("", 8)
	if err != nil {
		t.Fatal(err)
	}
	if el.N != 256 || el.M() != 256*32 {
		t.Fatalf("sizes %d/%d", el.N, el.M())
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.gcbf")
	want := gen.Path(12)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, want); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadGraph(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.M() != want.M() {
		t.Fatalf("loaded %d/%d, want %d/%d", got.N, got.M(), want.N, want.M())
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph("", 0); err == nil {
		t.Fatal("accepted no input")
	}
	if _, err := loadGraph("x.gcbf", 8); err == nil {
		t.Fatal("accepted both inputs")
	}
	if _, err := loadGraph("/does/not/exist.gcbf", 0); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestMB(t *testing.T) {
	if mb(1<<20) != 1.0 {
		t.Fatalf("mb(1MB) = %f", mb(1<<20))
	}
}
