// bfsrun executes BFS/DOBFS on the simulated GPU cluster and prints per-run
// rates and the four-component timing breakdown of the paper's Figs. 8/10.
//
// Usage:
//
//	bfsrun -rmat 16 -nodes 4 -ranks 2 -gpus 2 -sources 6
//	bfsrun -graph scale20.gcbf -nodes 8 -ranks 2 -gpus 2 -no-do
//	bfsrun -rmat 14 -nodes 1 -ranks 1 -gpus 4 -validate
//	bfsrun -rmat 16 -nodes 8 -ranks 2 -gpus 2 -exchange butterfly -compress adaptive
//	bfsrun -rmat 15 -nodes 4 -ranks 2 -gpus 2 -sources 16 -parallel 8
//	bfsrun -rmat 15 -nodes 3 -ranks 2 -gpus 2 -sources 64 -sweep -validate
//
// -exchange selects the inter-rank normal-vertex exchange policy:
// "allpairs" (default, one message per destination rank per iteration),
// "butterfly" (hypercube hops with aggregated messages; any rank count —
// non-powers-of-two add a pre/post cleanup hop pair), or "hybrid" (picks
// allpairs or butterfly per iteration from the known frontier volume
// through a cost model over the simulated link parameters). Results are
// identical across policies; message counts and simulated times differ.
//
// -parallel runs up to K BFS queries concurrently through the core query
// plan's batch path — the service workload of the paper's §VI-A methodology
// (64 random sources per data point). Results are deterministic and printed
// in source order regardless of K.
//
// -sweep answers all sources in a single multi-source traversal (MS-BFS):
// per-vertex visited state widens to a K-bit query mask and one BSP sweep
// produces every query's levels and parents, bit-identical to independent
// runs; per-query counters and simulated time are equal shares of the sweep
// totals.
//
// -updates N replays a stream of N synthetic edge-delta batches (size
// -updatefrac of the edge count, kind -updatekind) against the loaded graph:
// each batch advances the graph one epoch — the next epoch's partition is
// built incrementally beside the live one, sharing unchanged per-GPU
// subgraphs — and the previous result is repaired by a corrective traversal
// instead of recomputed. With -validate every repaired result is checked
// bit-identically (levels AND parents) against a full recompute on the new
// epoch plus the serial/Graph500 rules:
//
//	bfsrun -rmat 14 -nodes 3 -ranks 2 -gpus 2 -updates 3 -updatefrac 0.01 -updatekind mixed -validate
//
// -timeout bounds the whole run (all queries, or the whole update replay)
// with a context deadline; the engine aborts within one BSP iteration of
// expiry. Exit codes: 0 success, 1 any other error, 3 deadline expired —
// scripts distinguish a slow run (3) from a wrong one (1).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"gcbfs/internal/baseline"
	"gcbfs/internal/core"
	"gcbfs/internal/delta"
	"gcbfs/internal/g500"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "binary graph file (from rmatgen)")
		rmatScale = flag.Int("rmat", 0, "generate an RMAT graph of this scale instead of -graph")
		nodes     = flag.Int("nodes", 1, "cluster nodes")
		ranks     = flag.Int("ranks", 2, "MPI ranks per node")
		gpus      = flag.Int("gpus", 2, "GPUs per rank")
		th        = flag.Int64("th", 0, "degree threshold TH (0 = auto via 4n/p rule)")
		nSources  = flag.Int("sources", 6, "number of randomly chosen BFS sources")
		seed      = flag.Int64("seed", 1, "source selection seed")
		parallel  = flag.Int("parallel", 1, "concurrent BFS queries (batch path; results stay deterministic)")
		noDO      = flag.Bool("no-do", false, "disable direction optimization (plain BFS)")
		l2a       = flag.Bool("local-all2all", false, "enable the Local-All2All optimization (L)")
		uniq      = flag.Bool("uniquify", false, "enable send-bin uniquification (U)")
		ir        = flag.Bool("iallreduce", false, "use non-blocking delegate reduction (IR instead of BR)")
		compress  = flag.String("compress", "off", "frontier-exchange codec: off, adaptive, raw, delta or bitmap")
		exchange  = flag.String("exchange", "allpairs", "normal-vertex exchange policy: allpairs, butterfly or hybrid")
		pipeline  = flag.Bool("pipeline", true, "software-pipeline butterfly hops (overlap transfers with per-hop codec compute)")
		flat      = flag.Bool("flat", false, "flat exchange: per-GPU fragments instead of the hierarchical per-rank aggregation (ablation baseline; no effect at -gpus 1)")
		amp       = flag.Float64("amp", 1, "work amplification for the timing model (2^(paperScale-localScale))")
		sweep     = flag.Bool("sweep", false, "answer all sources in one shared multi-source sweep (MS-BFS) instead of independent queries")
		validate  = flag.Bool("validate", false, "validate distances against serial BFS + Graph500 rules")
		updates   = flag.Int("updates", 0, "replay this many synthetic edge-delta batches, repairing the BFS across each epoch")
		updFrac   = flag.Float64("updatefrac", 0.01, "delta size as a fraction of the undirected edge count (with -updates)")
		updKind   = flag.String("updatekind", "mixed", "delta kind: insert, delete or mixed (with -updates)")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no bound; expiry exits with code 3)")
	)
	flag.Parse()

	// exitErr maps an error to the documented exit codes: 3 for a deadline
	// expiry (the run was slow, not wrong), 1 for everything else.
	exitErr := func(err error) {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	el, err := loadGraph(*graphPath, *rmatScale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	shape := core.ClusterShape{Nodes: *nodes, RanksPerNode: *ranks, GPUsPerRank: *gpus}
	deg := el.OutDegrees()
	threshold := *th
	if threshold <= 0 {
		threshold = partition.SuggestThreshold(deg, 4*el.N/int64(shape.P()))
	}
	sep := partition.Separate(el, threshold)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	mode, err := wire.ParseMode(*compress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	strat, err := core.ParseExchange(*exchange)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	opts := core.DefaultOptions()
	opts.DirectionOptimized = !*noDO
	opts.LocalAll2All = *l2a
	opts.Uniquify = *uniq
	opts.BlockingReduce = !*ir
	opts.Compression = mode
	opts.Exchange = strat
	opts.PipelineHops = *pipeline
	opts.FlatExchange = *flat
	opts.WorkAmplification = *amp
	opts.CollectLevels = *validate
	plan, err := core.NewPlan(sg, shape, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}

	mem := sg.Memory()
	fmt.Printf("graph: n=%d m=%d | cluster %s (%d GPUs) | TH=%d d=%d (%.2f%% of n) nn=%.2f%% of m\n",
		el.N, el.M(), shape, shape.P(), threshold, sg.D(),
		100*float64(sg.D())/float64(el.N), 100*float64(sg.CountNN)/float64(el.M()))
	fmt.Printf("memory: %.1f MB total (edge list %.1f MB, plain CSR %.1f MB), max GPU %.1f MB\n",
		mb(mem.Total()), mb(sg.EdgeListBytes()), mb(sg.PlainCSRBytes()), mb(sg.MaxGPUBytes()))

	// Sources: deterministic picks among positive-degree vertices (capped
	// at the available count — no spinning on sparse graphs).
	sources := graph.PickSources(deg, *nSources, uint64(*seed))
	if len(sources) < *nSources {
		fmt.Printf("note: only %d positive-degree sources available (asked for %d)\n",
			len(sources), *nSources)
	}

	// Delta-replay mode: repair the BFS across a stream of epoch updates
	// instead of answering independent queries.
	if *updates > 0 {
		if len(sources) == 0 {
			fmt.Fprintln(os.Stderr, "bfsrun: no positive-degree source for -updates")
			os.Exit(1)
		}
		if err := runUpdates(ctx, el, sg, shape, threshold, opts, sources[0],
			*updates, *updFrac, *updKind, uint64(*seed), *validate); err != nil {
			exitErr(err)
		}
		return
	}

	// The batch path: up to -parallel queries in flight, each on its own
	// pooled session over the shared plan; -sweep instead answers every
	// source through one multi-source traversal (MS-BFS), levels and
	// parents bit-identical to independent runs.
	var results []*metrics.RunResult
	if *sweep {
		results, err = plan.RunSweep(ctx, sources, core.Overrides{})
		if err == nil {
			fmt.Printf("sweep: %d queries answered by one shared traversal (per-query rates are sweep shares)\n",
				len(sources))
		}
	} else {
		results, err = plan.RunBatch(ctx, sources, *parallel, core.Overrides{})
		if err == nil && *parallel > 1 {
			fmt.Printf("batch: %d queries, %d in flight (deterministic, source-ordered)\n",
				len(sources), *parallel)
		}
	}
	if err != nil {
		exitErr(err)
	}

	var serialCSR *graph.CSR
	if *validate {
		serialCSR = graph.BuildCSR(el)
	}
	for _, res := range results {
		fmt.Printf("source %-10d iters=%-3d %8.3f ms  %8.3f GTEPS  edges-scanned=%d\n",
			res.Source, res.Iterations, res.SimSeconds*1e3, res.GTEPS(), res.EdgesScanned)
		if *validate {
			if err := g500.Validate(el, res.Source, res.Levels); err != nil {
				fmt.Fprintf(os.Stderr, "bfsrun: VALIDATION FAILED: %v\n", err)
				os.Exit(1)
			}
			want := baseline.SerialBFS(serialCSR, res.Source)
			if err := g500.CompareLevels(res.Levels, want); err != nil {
				fmt.Fprintf(os.Stderr, "bfsrun: MISMATCH vs serial: %v\n", err)
				os.Exit(1)
			}
		}
	}
	agg := metrics.AggregateRuns(results)
	fmt.Printf("\naggregate (geo-mean over %d runs, %d filtered): %.3f GTEPS, mean %.3f ms, %.1f iterations\n",
		agg.Runs, agg.Filtered, agg.GTEPS, agg.MeanMS, agg.Iterations)
	fmt.Printf("breakdown (mean ms): computation=%.3f local-comm=%.3f remote-normal=%.3f remote-delegate=%.3f\n",
		agg.Parts.Computation*1e3, agg.Parts.LocalComm*1e3,
		agg.Parts.RemoteNormal*1e3, agg.Parts.RemoteDelegate*1e3)
	if mode != wire.ModeOff {
		var w metrics.WireStats
		for _, r := range results {
			w.Accumulate(r.Wire)
		}
		fmt.Printf("wire (%s): %.1f kB raw -> %.1f kB sent (%.1f%% saved; schemes raw=%d delta=%d bitmap=%d; memo hits=%d)\n",
			mode, float64(w.RawBytes)/1024, float64(w.CompressedBytes)/1024,
			100*w.Savings(), w.SchemeRaw, w.SchemeDelta, w.SchemeBitmap, w.MemoHits)
		fmt.Printf("codec: %.1f kB through pack/unpack kernels, %.2f µs charged (in remote-normal)\n",
			float64(w.CodecBytes)/1024, w.CodecSeconds*1e6)
		if w.PairRawBytes > 0 {
			fmt.Printf("parent pairs: %.1f kB raw -> %.1f kB sent\n",
				float64(w.PairRawBytes)/1024, float64(w.PairWireBytes)/1024)
		}
		if w.MaskRawBytes > 0 {
			fmt.Printf("delegate masks: %.1f kB raw -> %.1f kB sent\n",
				float64(w.MaskRawBytes)/1024, float64(w.MaskWireBytes)/1024)
		}
	}
	var xs metrics.ExchangeStats
	for _, r := range results {
		xs.Accumulate(r.Exchange)
	}
	fmt.Printf("exchange (%s): iters allpairs=%d butterfly=%d hops/iter≤%d msgs=%d forwarded=%.1f kB max-msg=%.2f MB\n",
		xs.Strategy, xs.AllPairsIterations, xs.ButterflyIterations, xs.HopsPerIteration,
		xs.Messages, float64(xs.ForwardedBytes)/1024, float64(xs.MaxMessageBytes)/(1<<20))
	if *pipeline && xs.ButterflyIterations > 0 {
		fmt.Printf("pipeline: %.2f µs codec hidden under hop transfers, %d stalls (codec outlasted the wire)\n",
			xs.HiddenCodecSeconds*1e6, xs.PipelineStalls)
	}
	if xs.NVLinkSeconds > 0 {
		fmt.Printf("nvlink (hierarchical): %.2f µs intra-rank aggregation/staging, %.2f µs hidden under hop transfers\n",
			xs.NVLinkSeconds*1e6, xs.HiddenNVLinkSeconds*1e6)
	}
	fmt.Printf("exchange cost model: predicted remote-normal %.3f ms vs actual %.3f ms (calibration ap=%.2f bf=%.2f)\n",
		xs.PredictedSeconds*1e3, totalRemoteNormal(results)*1e3,
		xs.CalibrationAllPairs, xs.CalibrationButterfly)
	if *validate {
		fmt.Println("validation: all runs match serial BFS and pass Graph500-style checks")
	}
}

// runUpdates replays n synthetic delta batches: each advances the graph one
// epoch (incremental distribution beside the live partition) and repairs the
// running BFS result through the corrective traversal. With validate, every
// repaired result is compared bit-identically against a full recompute on
// the new epoch and checked against the serial/Graph500 rules.
func runUpdates(ctx context.Context, el *graph.EdgeList, sg *partition.Subgraphs, shape core.ClusterShape,
	threshold int64, opts core.Options, source int64, n int, frac float64,
	kindName string, seed uint64, validate bool) error {
	kind, err := delta.ParseKind(kindName)
	if err != nil {
		return err
	}
	// Repair consumes the prior epoch's levels AND parents regardless of
	// what the query flags asked for.
	opts.CollectLevels = true
	opts.CollectParents = true
	plan, err := core.NewPlanEpoch(sg, shape, opts, 1)
	if err != nil {
		return err
	}
	prior, err := plan.Run(ctx, source, core.Overrides{})
	if err != nil {
		return err
	}
	fmt.Printf("\nupdates: replaying %d %s deltas of ~%.2f%% of edges, repairing source %d across epochs\n",
		n, kind, 100*frac, source)
	fmt.Printf("epoch 1: full traversal %8.3f ms, %d iterations\n",
		prior.SimSeconds*1e3, prior.Iterations)
	for i := 1; i <= n; i++ {
		b := delta.Synthesize(el, frac, kind, seed+uint64(i))
		el2, err := delta.Apply(el, b)
		if err != nil {
			return err
		}
		sep2 := partition.Separate(el2, threshold)
		sg2, shared, err := partition.DistributeIncremental(el2, sep2, shape.PartitionConfig(), sg)
		if err != nil {
			return err
		}
		epoch := uint64(i + 1)
		plan2, err := core.NewPlanEpoch(sg2, shape, opts, epoch)
		if err != nil {
			return err
		}
		invalid, seeds := delta.Affected(prior.Levels, prior.Parents, b)
		nInvalid := 0
		for _, iv := range invalid {
			if iv {
				nInvalid++
			}
		}
		rep, err := plan2.RunRepair(ctx, source, prior.Levels, invalid, seeds, core.Overrides{})
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d: Δ%d edges, %d invalidated, %d/%d GPU subgraphs shared | repair %8.3f ms (%d iters)",
			epoch, b.Size(), nInvalid, shared, shape.P(), rep.SimSeconds*1e3, rep.Iterations)
		if validate {
			full, err := plan2.Run(ctx, source, core.Overrides{})
			if err != nil {
				return err
			}
			for v := range full.Levels {
				if rep.Levels[v] != full.Levels[v] {
					return fmt.Errorf("epoch %d: vertex %d repaired level %d, recompute %d",
						epoch, v, rep.Levels[v], full.Levels[v])
				}
			}
			for v := range full.Parents {
				if rep.Parents[v] != full.Parents[v] {
					return fmt.Errorf("epoch %d: vertex %d repaired parent %d, recompute %d",
						epoch, v, rep.Parents[v], full.Parents[v])
				}
			}
			if err := g500.Validate(el2, source, rep.Levels); err != nil {
				return fmt.Errorf("epoch %d: %w", epoch, err)
			}
			want := baseline.SerialBFS(graph.BuildCSR(el2), source)
			if err := g500.CompareLevels(rep.Levels, want); err != nil {
				return fmt.Errorf("epoch %d: %w", epoch, err)
			}
			fmt.Printf(" vs recompute %8.3f ms (%.2f×) — bit-identical, serial-validated",
				full.SimSeconds*1e3, full.SimSeconds/rep.SimSeconds)
		}
		fmt.Println()
		el, sg, prior = el2, sg2, rep
	}
	if validate {
		fmt.Println("validation: every repaired epoch matches a full recompute (levels and parents) and the Graph500 rules")
	}
	return nil
}

func loadGraph(path string, scale int) (*graph.EdgeList, error) {
	switch {
	case path != "" && scale != 0:
		return nil, fmt.Errorf("use either -graph or -rmat, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadBinary(f)
	case scale > 0:
		return rmat.Generate(rmat.DefaultParams(scale)), nil
	default:
		return nil, fmt.Errorf("one of -graph or -rmat is required")
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// totalRemoteNormal sums the remote-normal component over all runs — the
// actual counterpart of the policy cost model's predicted seconds.
func totalRemoteNormal(results []*metrics.RunResult) float64 {
	var t float64
	for _, r := range results {
		t += r.Parts.RemoteNormal
	}
	return t
}
